package tacl

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// evalExpr evaluates a TacL expression. Like Tcl's expr, it performs its
// own $variable and [command] substitution, so conditions can be passed in
// braces and re-evaluated on every loop iteration. The hot path compiles
// the expression once (through the shared cache) and walks the AST; the
// string-walking evaluator below remains as the reference implementation
// the equivalence suite and fuzz target compare against.
func evalExpr(in *Interp, src string) (string, error) {
	if in.direct {
		return evalExprDirect(in, src)
	}
	prog, err := compileExprCached(src)
	if err != nil {
		// Compilation failed: run the reference evaluator instead, so a
		// malformed expression behaves exactly as it always did — operands
		// before the syntax error still evaluate (and bill steps, and leave
		// their side effects) in the original order, and the error text is
		// the original one. The error path is never hot, so re-scanning is
		// fine.
		return evalExprDirect(in, src)
	}
	v, err := prog.root.eval(in)
	if err != nil {
		return "", fmt.Errorf("expr %q: %w", src, err)
	}
	return v.text(), nil
}

// evalExprDirect is the original parse-and-evaluate-in-one-pass evaluator:
// it re-scans the source on every call. Kept as the semantic reference for
// the compiled path (see exprc.go and the equivalence tests).
func evalExprDirect(in *Interp, src string) (string, error) {
	p := &exprParser{in: in, src: src}
	v, err := p.parseTernary()
	if err != nil {
		return "", fmt.Errorf("expr %q: %w", src, err)
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return "", fmt.Errorf("expr %q: trailing garbage at %d", src, p.pos)
	}
	return v.text(), nil
}

// exprVal is an expression operand: a number, a string, or both (strings
// that look numeric are promoted on demand).
type exprVal struct {
	s     string
	isInt bool
	i     int64
	isFlt bool
	f     float64
}

func numVal(i int64) exprVal {
	return exprVal{s: strconv.FormatInt(i, 10), isInt: true, i: i, isFlt: true, f: float64(i)}
}

func fltVal(f float64) exprVal {
	return exprVal{s: formatFloat(f), isFlt: true, f: f}
}

func strVal(s string) exprVal {
	v := exprVal{s: s}
	if i, ok := fastAtoi(s); ok {
		v.isInt, v.i = true, i
		v.isFlt, v.f = true, float64(i)
	} else if i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64); err == nil {
		v.isInt, v.i = true, i
		v.isFlt, v.f = true, float64(i)
	} else if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		v.isFlt, v.f = true, f
	}
	return v
}

// fastAtoi parses plain decimal integers — the overwhelmingly common operand
// shape (loop counters, folder lengths) — without the TrimSpace/ParseInt
// machinery. Anything else (whitespace, floats, hex, overflow-length) falls
// back to the reference path above with identical results: 18 digits cannot
// overflow int64, and ParseInt accepts the same sign/leading-zero forms.
func fastAtoi(s string) (int64, bool) {
	if len(s) == 0 || len(s) > 18 {
		return 0, false
	}
	i := 0
	neg := false
	if s[0] == '-' || s[0] == '+' {
		neg = s[0] == '-'
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	var n int64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

func boolVal(b bool) exprVal {
	if b {
		return numVal(1)
	}
	return numVal(0)
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func (v exprVal) text() string { return v.s }

func (v exprVal) truthy() (bool, error) {
	if v.isFlt {
		return v.f != 0, nil
	}
	return Truthy(v.s)
}

func (v exprVal) needNum() error {
	if !v.isFlt {
		return fmt.Errorf("expected number, got %q", v.s)
	}
	return nil
}

type exprParser struct {
	in  *Interp
	src string
	pos int
}

func (p *exprParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n':
			p.pos += 2 // line continuation inside a braced expression
		default:
			return
		}
	}
}

func (p *exprParser) peekOp(ops ...string) string {
	p.skipWS()
	for _, op := range ops {
		if strings.HasPrefix(p.src[p.pos:], op) {
			return op
		}
	}
	return ""
}

func (p *exprParser) parseTernary() (exprVal, error) {
	cond, err := p.parseOr()
	if err != nil {
		return exprVal{}, err
	}
	if p.peekOp("?") == "" {
		return cond, nil
	}
	p.pos++
	ok, err := cond.truthy()
	if err != nil {
		return exprVal{}, err
	}
	thenV, err := p.parseTernary()
	if err != nil {
		return exprVal{}, err
	}
	if p.peekOp(":") == "" {
		return exprVal{}, errors.New("expected : in ternary")
	}
	p.pos++
	elseV, err := p.parseTernary()
	if err != nil {
		return exprVal{}, err
	}
	if ok {
		return thenV, nil
	}
	return elseV, nil
}

func (p *exprParser) parseOr() (exprVal, error) {
	left, err := p.parseAnd()
	if err != nil {
		return exprVal{}, err
	}
	for p.peekOp("||") != "" {
		p.pos += 2
		lb, err := left.truthy()
		if err != nil {
			return exprVal{}, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return exprVal{}, err
		}
		rb, err := right.truthy()
		if err != nil {
			return exprVal{}, err
		}
		left = boolVal(lb || rb)
	}
	return left, nil
}

func (p *exprParser) parseAnd() (exprVal, error) {
	left, err := p.parseEquality()
	if err != nil {
		return exprVal{}, err
	}
	for p.peekOp("&&") != "" {
		p.pos += 2
		lb, err := left.truthy()
		if err != nil {
			return exprVal{}, err
		}
		right, err := p.parseEquality()
		if err != nil {
			return exprVal{}, err
		}
		rb, err := right.truthy()
		if err != nil {
			return exprVal{}, err
		}
		left = boolVal(lb && rb)
	}
	return left, nil
}

func (p *exprParser) parseEquality() (exprVal, error) {
	left, err := p.parseRelational()
	if err != nil {
		return exprVal{}, err
	}
	for {
		op := p.peekOp("==", "!=", "eq ", "ne ")
		if op == "" {
			// eq/ne at end of string (no trailing space)
			if p.peekOp("eq", "ne") != "" && p.pos+2 >= len(p.src) {
				op = p.src[p.pos : p.pos+2]
			} else {
				return left, nil
			}
		}
		op = strings.TrimSpace(op)
		p.pos += len(op)
		right, err := p.parseRelational()
		if err != nil {
			return exprVal{}, err
		}
		left = applyEquality(op, left, right)
	}
}

func (p *exprParser) parseRelational() (exprVal, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return exprVal{}, err
	}
	for {
		op := p.peekOp("<=", ">=", "<", ">")
		if op == "" {
			return left, nil
		}
		p.pos += len(op)
		right, err := p.parseAdditive()
		if err != nil {
			return exprVal{}, err
		}
		left = applyRelational(op, left, right)
	}
}

func (p *exprParser) parseAdditive() (exprVal, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return exprVal{}, err
	}
	for {
		op := p.peekOp("+", "-")
		if op == "" {
			return left, nil
		}
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return exprVal{}, err
		}
		left, err = applyAdditive(op[0], left, right)
		if err != nil {
			return exprVal{}, err
		}
	}
}

func (p *exprParser) parseMultiplicative() (exprVal, error) {
	left, err := p.parseUnary()
	if err != nil {
		return exprVal{}, err
	}
	for {
		op := p.peekOp("*", "/", "%")
		if op == "" {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return exprVal{}, err
		}
		left, err = applyMultiplicative(op[0], left, right)
		if err != nil {
			return exprVal{}, err
		}
	}
}

// floorDiv and floorMod implement Tcl's flooring integer semantics.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m != 0 && ((a < 0) != (b < 0)) {
		m += b
	}
	return m
}

func (p *exprParser) parseUnary() (exprVal, error) {
	p.skipWS()
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '!':
			p.pos++
			v, err := p.parseUnary()
			if err != nil {
				return exprVal{}, err
			}
			b, err := v.truthy()
			if err != nil {
				return exprVal{}, err
			}
			return boolVal(!b), nil
		case '-':
			p.pos++
			v, err := p.parseUnary()
			if err != nil {
				return exprVal{}, err
			}
			if err := v.needNum(); err != nil {
				return exprVal{}, err
			}
			if v.isInt {
				return numVal(-v.i), nil
			}
			return fltVal(-v.f), nil
		case '+':
			p.pos++
			return p.parseUnary()
		}
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (exprVal, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return exprVal{}, errors.New("unexpected end of expression")
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseTernary()
		if err != nil {
			return exprVal{}, err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return exprVal{}, errors.New("missing )")
		}
		p.pos++
		return v, nil
	case c == '$':
		name, err := p.scanVarName()
		if err != nil {
			return exprVal{}, err
		}
		v, err := p.in.getVar(name)
		if err != nil {
			return exprVal{}, err
		}
		return strVal(v), nil
	case c == '[':
		script, err := p.scanBracketed()
		if err != nil {
			return exprVal{}, err
		}
		res, err := p.in.Eval(script)
		if err != nil {
			return exprVal{}, err
		}
		return strVal(res), nil
	case c == '"':
		s, err := p.scanQuoted()
		if err != nil {
			return exprVal{}, err
		}
		return strVal(s), nil
	case c == '{':
		s, err := p.scanBraced()
		if err != nil {
			return exprVal{}, err
		}
		return exprVal{s: s}, nil // braced operands stay strings
	case c >= '0' && c <= '9' || c == '.':
		return p.scanNumber()
	case isAlpha(c):
		return p.scanIdentOrFunc()
	default:
		return exprVal{}, fmt.Errorf("unexpected character %q", c)
	}
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (p *exprParser) scanVarName() (string, error) {
	p.pos++ // '$'
	if p.pos < len(p.src) && p.src[p.pos] == '{' {
		end := strings.IndexByte(p.src[p.pos:], '}')
		if end < 0 {
			return "", errors.New("missing } in variable name")
		}
		name := p.src[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return name, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isVarChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", errors.New("bad variable reference")
	}
	return p.src[start:p.pos], nil
}

func (p *exprParser) scanBracketed() (string, error) {
	start := p.pos + 1
	nest := 0
	for i := p.pos; i < len(p.src); i++ {
		switch p.src[i] {
		case '[':
			nest++
		case ']':
			nest--
			if nest == 0 {
				p.pos = i + 1
				return p.src[start:i], nil
			}
		}
	}
	return "", errors.New("missing ]")
}

func (p *exprParser) scanQuoted() (string, error) {
	var sb strings.Builder
	i := p.pos + 1
	for i < len(p.src) {
		c := p.src[i]
		if c == '"' {
			p.pos = i + 1
			return sb.String(), nil
		}
		if c == '\\' && i+1 < len(p.src) {
			i++
			sb.WriteByte(unescapeChar(p.src[i]))
		} else {
			sb.WriteByte(c)
		}
		i++
	}
	return "", errors.New("missing close quote")
}

func (p *exprParser) scanBraced() (string, error) {
	nest := 0
	start := p.pos + 1
	for i := p.pos; i < len(p.src); i++ {
		switch p.src[i] {
		case '{':
			nest++
		case '}':
			nest--
			if nest == 0 {
				p.pos = i + 1
				return p.src[start:i], nil
			}
		}
	}
	return "", errors.New("missing close brace")
}

func (p *exprParser) scanNumber() (exprVal, error) {
	start := p.pos
	seenDot, seenExp := false, false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && p.pos > start:
			seenExp = true
			if p.pos+1 < len(p.src) && (p.src[p.pos+1] == '+' || p.src[p.pos+1] == '-') {
				p.pos++
			}
		default:
			goto done
		}
		p.pos++
	}
done:
	tok := p.src[start:p.pos]
	if !seenDot && !seenExp {
		i, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return exprVal{}, fmt.Errorf("bad integer %q", tok)
		}
		return numVal(i), nil
	}
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return exprVal{}, fmt.Errorf("bad number %q", tok)
	}
	return fltVal(f), nil
}

// scanIdentOrFunc handles bare identifiers: true/false, math functions with
// call syntax like sqrt(2), and eq/ne handled upstream. Any other bare word
// is a plain string operand.
func (p *exprParser) scanIdentOrFunc() (exprVal, error) {
	start := p.pos
	for p.pos < len(p.src) && isVarChar(p.src[p.pos]) {
		p.pos++
	}
	ident := p.src[start:p.pos]
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		return p.parseFuncCall(ident)
	}
	switch ident {
	case "true", "yes", "on":
		return boolVal(true), nil
	case "false", "no", "off":
		return boolVal(false), nil
	}
	return exprVal{s: ident}, nil
}

func (p *exprParser) parseFuncCall(name string) (exprVal, error) {
	p.pos++ // '('
	var args []exprVal
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ')' {
		p.pos++
	} else {
		for {
			v, err := p.parseTernary()
			if err != nil {
				return exprVal{}, err
			}
			args = append(args, v)
			p.skipWS()
			if p.pos >= len(p.src) {
				return exprVal{}, fmt.Errorf("missing ) in call to %s", name)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return exprVal{}, fmt.Errorf("bad argument list for %s", name)
		}
	}
	return applyFunc(name, args)
}

// applyFunc applies a math function to already-evaluated operands; shared
// by the direct evaluator and the compiled path so both agree exactly on
// arity checks, coercions, and error messages.
func applyFunc(name string, args []exprVal) (exprVal, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d args, got %d", name, n, len(args))
		}
		for _, a := range args {
			if err := a.needNum(); err != nil {
				return err
			}
		}
		return nil
	}
	switch name {
	case "abs":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		if args[0].isInt {
			if args[0].i < 0 {
				return numVal(-args[0].i), nil
			}
			return args[0], nil
		}
		return fltVal(math.Abs(args[0].f)), nil
	case "int":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		return numVal(int64(args[0].f)), nil
	case "double":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		return fltVal(args[0].f), nil
	case "round":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		return numVal(int64(math.Round(args[0].f))), nil
	case "floor":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		return fltVal(math.Floor(args[0].f)), nil
	case "ceil":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		return fltVal(math.Ceil(args[0].f)), nil
	case "sqrt":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		if args[0].f < 0 {
			return exprVal{}, errors.New("sqrt of negative number")
		}
		return fltVal(math.Sqrt(args[0].f)), nil
	case "pow":
		if err := need(2); err != nil {
			return exprVal{}, err
		}
		return fltVal(math.Pow(args[0].f, args[1].f)), nil
	case "min":
		if len(args) == 0 {
			return exprVal{}, errors.New("min needs arguments")
		}
		best := args[0]
		for _, a := range args[1:] {
			if err := a.needNum(); err != nil {
				return exprVal{}, err
			}
			if a.f < best.f {
				best = a
			}
		}
		return best, nil
	case "max":
		if len(args) == 0 {
			return exprVal{}, errors.New("max needs arguments")
		}
		best := args[0]
		for _, a := range args[1:] {
			if err := a.needNum(); err != nil {
				return exprVal{}, err
			}
			if a.f > best.f {
				best = a
			}
		}
		return best, nil
	case "fmod":
		if err := need(2); err != nil {
			return exprVal{}, err
		}
		if args[1].f == 0 {
			return exprVal{}, errors.New("division by zero")
		}
		return fltVal(math.Mod(args[0].f, args[1].f)), nil
	default:
		return exprVal{}, fmt.Errorf("unknown function %q", name)
	}
}
