package tacl

import (
	"fmt"
	"sort"
	"strconv"
)

// Register VM. runVM executes the flat op stream produced by bytecode.go.
// Arguments accumulate in the interpreter's shared argScratch arena (no
// per-command []string), dispatch goes through interned symbols into the
// table snapshot's dense array, and control flow is pc manipulation instead
// of sentinel-error unwinding — except where the tree-walker's semantics
// are themselves error-based (break/continue/park/jump crossing proc or
// [cmd] boundaries), which the region table reproduces exactly.

// vmFrame holds per-activation loop state: step marks for no-progress
// charging, plus foreach element lists and cursors. One unified slot space,
// sized by the program's slot count; pooled per interpreter.
type vmFrame struct {
	marks []int
	lists [][]string
	idxs  []int
}

func (in *Interp) getVMFrame(n int) *vmFrame {
	var fr *vmFrame
	if k := len(in.freeVMFrames); k > 0 {
		fr = in.freeVMFrames[k-1]
		in.freeVMFrames[k-1] = nil
		in.freeVMFrames = in.freeVMFrames[:k-1]
	} else {
		fr = &vmFrame{}
	}
	if cap(fr.marks) < n {
		fr.marks = make([]int, n)
		fr.lists = make([][]string, n)
		fr.idxs = make([]int, n)
	} else {
		fr.marks = fr.marks[:n]
		fr.lists = fr.lists[:n]
		fr.idxs = fr.idxs[:n]
	}
	return fr
}

func (in *Interp) putVMFrame(fr *vmFrame) {
	// Drop element references so a pooled interpreter never pins a prior
	// activation's foreach lists.
	for i := range fr.lists {
		fr.lists[i] = nil
	}
	in.freeVMFrames = append(in.freeVMFrames, fr)
}

// runVM executes a compiled program and returns the last command's result,
// exactly as EvalScript's tree-walk loop would.
func (in *Interp) runVM(p *program) (string, error) {
	var fr *vmFrame
	if p.numSlots > 0 {
		fr = in.getVMFrame(p.numSlots)
		defer in.putVMFrame(fr)
	}
	// Resolve the current variable scope once: commands that swap frames
	// (proc calls, uplevel) restore them before returning control to this
	// loop, so the scope pointer is stable for the whole run. The slot fast
	// path is valid only when the scope's bound layout is this very program
	// (sc.diverted is re-read per op — a `global`/`upvar` mid-run downgrades
	// the remaining ops to the full resolver). The first variable-bearing
	// program to run at top level binds the activation's global layout.
	var sc *varScope
	if len(in.frames) == 0 {
		if in.gscope.prog == nil && len(p.varNames) > 0 {
			in.bindGlobalScope(p)
		}
		sc = &in.gscope
	} else {
		sc = &in.frames[len(in.frames)-1].varScope
	}
	slotOK := sc.prog == p.layout
	base := len(in.argScratch)
	defer func() { in.argScratch = in.argScratch[:base] }()
	var result string
	ops := p.ops
	pc := 0
	for pc < len(ops) {
		op := &ops[pc]
		var err error
		switch op.code {
		case opStep:
			// Inlined chargeStep hot path: plain accounting when neither
			// the budget, the yield cadence (nextYield proves the modulo
			// can't hit), nor a hook can fire on this step. Any slow
			// condition re-runs the shared chargeStep from the
			// pre-increment state so its behavior stays the single source
			// of truth.
			in.Steps++
			if (in.MaxSteps > 0 && in.Steps > in.MaxSteps) ||
				in.Steps >= in.nextYield || in.StepHook != nil {
				in.Steps--
				err = in.chargeStep(int(op.line))
				if in.Steps >= in.nextYield {
					if in.YieldEvery > 0 && in.Yield != nil {
						in.nextYield = in.Steps - in.Steps%in.YieldEvery + in.YieldEvery
					} else {
						in.nextYield = int(^uint(0) >> 1)
					}
				}
			}
		case opArgConst:
			in.argScratch = append(in.argScratch, p.consts[op.a])
		case opArgVar:
			var v string
			v, err = in.getVar(p.consts[op.a])
			if err == nil {
				in.argScratch = append(in.argScratch, v)
			}
		case opArgScript:
			in.depth++
			if in.depth > maxDepth {
				in.depth--
				err = ErrDepth
			} else {
				var v string
				v, err = in.EvalScript(p.scripts[op.a])
				in.depth--
				if err == nil {
					in.argScratch = append(in.argScratch, v)
				}
			}
		case opArgWord:
			var v string
			v, err = in.evalWord(p.words[op.a])
			if err == nil {
				in.argScratch = append(in.argScratch, v)
			}
		case opCall:
			argc := int(op.b)
			args := in.argScratch[len(in.argScratch)-argc:]
			var res string
			res, err = in.dispatchStatic(p.syms[op.a], args, int(op.line))
			in.argScratch = in.argScratch[:len(in.argScratch)-argc]
			if err == nil {
				result = res
			}
		case opCallConst:
			var res string
			res, err = in.dispatchStatic(p.syms[op.b], p.argLists[op.a], int(op.line))
			if err == nil {
				result = res
			}
		case opCallDyn:
			argc := int(op.a)
			args := in.argScratch[len(in.argScratch)-argc:]
			var res string
			res, err = in.dispatchDyn(args, int(op.line))
			in.argScratch = in.argScratch[:len(in.argScratch)-argc]
			if err == nil {
				result = res
			}
		case opLoadSlot:
			if slotOK && !sc.diverted {
				if sc.meta[op.b]&slotLive != 0 {
					in.argScratch = append(in.argScratch, sc.slots[op.b])
				} else {
					err = fmt.Errorf("tacl: no such variable %q", p.consts[op.a])
				}
			} else {
				var v string
				v, err = in.getVar(p.consts[op.a])
				if err == nil {
					in.argScratch = append(in.argScratch, v)
				}
			}
		case opStoreSlot:
			n := len(in.argScratch) - 1
			v := in.argScratch[n]
			in.argScratch = in.argScratch[:n]
			if slotOK && !sc.diverted {
				sc.slots[op.b] = v
				sc.meta[op.b] = slotLive
			} else {
				in.setVar(p.consts[op.a], v)
			}
			result = v
		case opIncrSlot:
			var res string
			res, err = in.vmIncrSlot(p, sc, slotOK, op)
			if err == nil {
				result = res
			}
		case opGuard:
			if in.cmdShadowed(op.kind) {
				var res string
				res, err = in.evalCommandTail(p.cmds[op.c])
				if err == nil {
					result = res
					pc = int(op.b)
					continue
				}
			}
		case opJump:
			pc = int(op.a)
			continue
		case opCondJump:
			if op.c >= 0 {
				fr.marks[op.c] = in.Steps
			}
			var ok bool
			ok, err = in.vmCondEval(p.exprs[op.a])
			if err == nil && !ok {
				pc = int(op.b)
				continue
			}
		case opLoopBottom:
			// An iteration that evaluated no commands (empty body,
			// command-free condition) still burns one step: without this a
			// hostile agent could spin `while {1} {}` for free under guard
			// metering. Mirrors the same charge in the tree-walk builtins.
			if fr.marks[op.a] == in.Steps {
				err = in.chargeStep(int(op.line))
			}
			if err == nil {
				pc = int(op.b)
				continue
			}
		case opForeachInit:
			n := len(in.argScratch)
			var elems []string
			elems, err = ParseList(in.argScratch[n-1])
			in.argScratch = in.argScratch[:n-1]
			if err == nil {
				fr.lists[op.a] = elems
				fr.idxs[op.a] = 0
			}
		case opForeachNext:
			i := fr.idxs[op.a]
			elems := fr.lists[op.a]
			if i >= len(elems) {
				pc = int(op.b)
				continue
			}
			fr.marks[op.a] = in.Steps
			if op.d >= 0 && slotOK && !sc.diverted {
				sc.slots[op.d] = elems[i]
				sc.meta[op.d] = slotLive
			} else {
				in.setVar(p.consts[op.c], elems[i])
			}
			fr.idxs[op.a] = i + 1
		case opExpr:
			var res string
			res, err = vmExprEval(in, p.exprs[op.a])
			if err != nil && !isControl(err) {
				err = decorate(err, "expr", int(op.line))
			}
			if err == nil {
				result = res
			}
		case opResult:
			result = p.consts[op.a]
		case opDepth:
			in.depth++
			if in.depth > maxDepth {
				err = ErrDepth // the depth region undoes the increment
			}
		case opArgResult:
			in.depth--
			in.argScratch = append(in.argScratch, result)
		}
		if err != nil {
			npc, scratch, nerr := p.recoverErr(in, pc, err)
			if nerr != nil {
				in.argScratch = in.argScratch[:base]
				return "", nerr
			}
			// Resuming inside the program: keep the enclosing pending call
			// args (see region.scratch), drop anything pushed above them.
			in.argScratch = in.argScratch[:base+scratch]
			pc = npc
			continue
		}
		pc++
	}
	return result, nil
}

// recoverErr walks the regions containing pc from innermost outward: loop
// regions consume break/continue (returning the resume pc and its arg-stack
// watermark), depth regions undo their opDepth increment as the error leaves
// the inlined [cmd], and decor regions add the enclosing construct's
// name-and-line frame to non-control errors — the exact composition the
// nested tree-walk builtins produce. Cold path.
func (p *program) recoverErr(in *Interp, pc int, err error) (int, int, error) {
	var hits []int
	for i := range p.regions {
		r := &p.regions[i]
		if int32(pc) >= r.start && int32(pc) < r.end {
			hits = append(hits, i)
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		ra, rb := &p.regions[hits[a]], &p.regions[hits[b]]
		return ra.end-ra.start < rb.end-rb.start
	})
	for _, i := range hits {
		r := &p.regions[i]
		switch {
		case r.isLoop:
			// Exact sentinel identity, as the tree-walk loops test: a
			// break wrapped by expr's %w is an ordinary error here.
			if err == errBreak {
				return int(r.breakPC), int(r.scratch), nil
			}
			if err == errContinue {
				return int(r.contPC), int(r.scratch), nil
			}
		case r.isDepth:
			in.depth--
		default:
			if !isControl(err) {
				err = decorate(err, r.name, int(r.line))
			}
		}
	}
	return -1, 0, err
}

// cmdShadowed reports whether an inlined construct's name no longer
// resolves to the canonical builtin: a script proc, a per-activation
// Register override, or a table snapshot whose entry was replaced. Any of
// those sends the guard op down the generic-dispatch path. The verdict per
// kind is cached in canonMask; proc definition and Register nil canonState
// to force a rebuild, and a table Register invalidates by publishing a new
// snapshot pointer.
func (in *Interp) cmdShadowed(kind uint8) bool {
	st := in.table.state.Load()
	if st != in.canonState {
		mask := st.canon
		for k := uint8(0); k < numCanonKinds; k++ {
			name := canonNames[k]
			if in.procs != nil {
				if _, ok := in.procs[name]; ok {
					mask &^= 1 << k
					continue
				}
			}
			if in.commands != nil {
				if _, ok := in.commands[name]; ok {
					mask &^= 1 << k
				}
			}
		}
		in.canonMask, in.canonState = mask, st
	}
	return in.canonMask&(1<<kind) == 0
}

// vmIncrSlot executes an inlined incr: slot storage on the fast path, the
// unified resolver otherwise, with cmdIncr's exact error text and the
// name-and-line decoration generic dispatch would add.
func (in *Interp) vmIncrSlot(p *program, sc *varScope, slotOK bool, op *vmOp) (string, error) {
	name := p.consts[op.a]
	if slotOK && !sc.diverted {
		cur := "0"
		if sc.meta[op.b]&slotLive != 0 {
			cur = sc.slots[op.b]
		}
		n, perr := strconv.ParseInt(cur, 10, 64)
		if perr != nil {
			return "", decorate(fmt.Errorf("expected integer in %q, got %q", name, cur), "incr", int(op.line))
		}
		v := strconv.FormatInt(n+int64(op.c), 10)
		sc.slots[op.b] = v
		sc.meta[op.b] = slotLive
		return v, nil
	}
	v, err := in.incrVar(name, int64(op.c))
	if err != nil && !isControl(err) {
		return "", decorate(err, "incr", int(op.line))
	}
	return v, err
}

// dispatchStatic calls a symbol-resolved command with the tree-walker's
// dispatch order: procs, per-interp overrides, then the table snapshot's
// dense array (map fallback covers symbols interned after the snapshot was
// built). Proc and control errors propagate raw; command errors get the
// name-and-line decoration evalCommand applies.
func (in *Interp) dispatchStatic(sym *symbol, args []string, line int) (string, error) {
	if in.procs != nil {
		if pd, ok := in.procs[sym.name]; ok {
			return in.callProc(pd, args, line)
		}
	}
	var fn CmdFunc
	if in.commands != nil {
		fn = in.commands[sym.name]
	}
	if fn == nil {
		st := in.table.state.Load()
		if int(sym.id) < len(st.dense) {
			fn = st.dense[sym.id]
		}
		if fn == nil {
			fn = st.cmds[sym.name]
		}
	}
	if fn == nil {
		return "", fmt.Errorf("tacl: line %d: unknown command %q", line, sym.name)
	}
	in.curLine = line
	res, err := fn(in, args)
	if err != nil && !isControl(err) {
		return "", decorate(err, sym.name, line)
	}
	return res, err
}

// dispatchDyn resolves a command whose name was produced at runtime
// (args[0]); shared by the VM's dynamic calls and the tree-walker's
// evalCommandTail.
func (in *Interp) dispatchDyn(args []string, line int) (string, error) {
	name := args[0]
	if pd, ok := in.procs[name]; ok {
		return in.callProc(pd, args[1:], line)
	}
	fn, ok := in.commands[name]
	if !ok {
		fn, ok = in.table.lookup(name)
	}
	if !ok {
		return "", fmt.Errorf("tacl: line %d: unknown command %q", line, name)
	}
	in.curLine = line
	res, err := fn(in, args[1:])
	if err != nil && !isControl(err) {
		return "", decorate(err, name, line)
	}
	return res, err
}

// vmCondEval evaluates a loop/branch condition to a boolean. Errors stay
// raw: the construct's decor region frames them, matching how the
// tree-walk builtins return condition errors undecorated to evalCommand.
func (in *Interp) vmCondEval(ref *exprRef) (bool, error) {
	if ref.isConst {
		return ref.constTruthy, ref.constTruthyErr
	}
	if ref.fastKind >= fastLT && ref.fastKind <= fastGE {
		if li, ok := in.fastExprOperand(ref); ok {
			return fastExprRel(ref.fastKind, li, ref.fastConst), nil
		}
	}
	// Truthiness always goes through Truthy on the result TEXT — not
	// exprVal.truthy(), whose strVal trims whitespace before the numeric
	// parse and would accept conditions like "  2 " that Truthy rejects.
	v, err := vmExprEval(in, ref)
	if err != nil {
		return false, err
	}
	return Truthy(v)
}

// vmExprEval mirrors evalExpr for a precompiled operand: folded constant,
// fast slot-op form, compiled AST with the standard "expr %q" wrap, or the
// reference string-walking evaluator when compilation failed.
func vmExprEval(in *Interp, ref *exprRef) (string, error) {
	if ref.isConst {
		return ref.constVal, nil
	}
	if ref.fastKind != fastNone {
		if ref.fastKind == fastCmdSub {
			var res string
			var err error
			if !in.noVM && !in.direct {
				res, err = in.runVM(ref.fastCmd.prog)
			} else {
				res, err = in.EvalScript(ref.fastCmd.body)
			}
			if err != nil {
				return "", fmt.Errorf("expr %q: %w", ref.src, err)
			}
			return res, nil
		}
		if li, ok := in.fastExprOperand(ref); ok {
			switch ref.fastKind {
			case fastAdd:
				return strconv.FormatInt(li+ref.fastConst, 10), nil
			case fastSub:
				return strconv.FormatInt(li-ref.fastConst, 10), nil
			default:
				if fastExprRel(ref.fastKind, li, ref.fastConst) {
					return "1", nil
				}
				return "0", nil
			}
		}
	}
	if ref.prog == nil {
		return evalExprDirect(in, ref.src)
	}
	v, err := ref.prog.root.eval(in)
	if err != nil {
		return "", fmt.Errorf("expr %q: %w", ref.src, err)
	}
	return v.text(), nil
}

// fastExprOperand reads an exprRef fast form's slot operand as an integer.
// ok=false on any precondition miss (scope not bound to the ref's program,
// diverted, slot not live, or a value fastAtoi can't take), sending the
// caller to the generic AST for identical handling of every edge.
func (in *Interp) fastExprOperand(ref *exprRef) (int64, bool) {
	sc := in.curScope()
	if sc.prog != ref.fastProg || sc.diverted || sc.meta[ref.fastSlot]&slotLive == 0 {
		return 0, false
	}
	return fastAtoi(sc.slots[ref.fastSlot])
}

// fastExprRel compares as float64, exactly like applyRelational's numeric
// arm (both operands of a taken fast path are numeric by construction).
func fastExprRel(kind uint8, l, r int64) bool {
	lf, rf := float64(l), float64(r)
	switch kind {
	case fastLT:
		return lf < rf
	case fastLE:
		return lf <= rf
	case fastGT:
		return lf > rf
	default:
		return lf >= rf
	}
}
