package tacl

import (
	"fmt"
	"sort"
)

// Register VM. runVM executes the flat op stream produced by bytecode.go.
// Arguments accumulate in the interpreter's shared argScratch arena (no
// per-command []string), dispatch goes through interned symbols into the
// table snapshot's dense array, and control flow is pc manipulation instead
// of sentinel-error unwinding — except where the tree-walker's semantics
// are themselves error-based (break/continue/park/jump crossing proc or
// [cmd] boundaries), which the region table reproduces exactly.

// vmFrame holds per-activation loop state: step marks for no-progress
// charging, plus foreach element lists and cursors. One unified slot space,
// sized by the program's slot count; pooled per interpreter.
type vmFrame struct {
	marks []int
	lists [][]string
	idxs  []int
}

func (in *Interp) getVMFrame(n int) *vmFrame {
	var fr *vmFrame
	if k := len(in.freeVMFrames); k > 0 {
		fr = in.freeVMFrames[k-1]
		in.freeVMFrames[k-1] = nil
		in.freeVMFrames = in.freeVMFrames[:k-1]
	} else {
		fr = &vmFrame{}
	}
	if cap(fr.marks) < n {
		fr.marks = make([]int, n)
		fr.lists = make([][]string, n)
		fr.idxs = make([]int, n)
	} else {
		fr.marks = fr.marks[:n]
		fr.lists = fr.lists[:n]
		fr.idxs = fr.idxs[:n]
	}
	return fr
}

func (in *Interp) putVMFrame(fr *vmFrame) {
	// Drop element references so a pooled interpreter never pins a prior
	// activation's foreach lists.
	for i := range fr.lists {
		fr.lists[i] = nil
	}
	in.freeVMFrames = append(in.freeVMFrames, fr)
}

// runVM executes a compiled program and returns the last command's result,
// exactly as EvalScript's tree-walk loop would.
func (in *Interp) runVM(p *program) (string, error) {
	var fr *vmFrame
	if p.numSlots > 0 {
		fr = in.getVMFrame(p.numSlots)
		defer in.putVMFrame(fr)
	}
	base := len(in.argScratch)
	defer func() { in.argScratch = in.argScratch[:base] }()
	var result string
	ops := p.ops
	pc := 0
	for pc < len(ops) {
		op := &ops[pc]
		var err error
		switch op.code {
		case opStep:
			err = in.chargeStep(int(op.line))
		case opArgConst:
			in.argScratch = append(in.argScratch, p.consts[op.a])
		case opArgVar:
			var v string
			v, err = in.getVar(p.consts[op.a])
			if err == nil {
				in.argScratch = append(in.argScratch, v)
			}
		case opArgScript:
			in.depth++
			if in.depth > maxDepth {
				in.depth--
				err = ErrDepth
			} else {
				var v string
				v, err = in.EvalScript(p.scripts[op.a])
				in.depth--
				if err == nil {
					in.argScratch = append(in.argScratch, v)
				}
			}
		case opArgWord:
			var v string
			v, err = in.evalWord(p.words[op.a])
			if err == nil {
				in.argScratch = append(in.argScratch, v)
			}
		case opCall:
			argc := int(op.b)
			args := in.argScratch[len(in.argScratch)-argc:]
			var res string
			res, err = in.dispatchStatic(p.syms[op.a], args, int(op.line))
			in.argScratch = in.argScratch[:len(in.argScratch)-argc]
			if err == nil {
				result = res
			}
		case opCallConst:
			var res string
			res, err = in.dispatchStatic(p.syms[op.b], p.argLists[op.a], int(op.line))
			if err == nil {
				result = res
			}
		case opCallDyn:
			argc := int(op.a)
			args := in.argScratch[len(in.argScratch)-argc:]
			var res string
			res, err = in.dispatchDyn(args, int(op.line))
			in.argScratch = in.argScratch[:len(in.argScratch)-argc]
			if err == nil {
				result = res
			}
		case opGuard:
			if in.cmdShadowed(p.syms[op.a], op.kind) {
				var res string
				res, err = in.evalCommandTail(p.cmds[op.c])
				if err == nil {
					result = res
					pc = int(op.b)
					continue
				}
			}
		case opJump:
			pc = int(op.a)
			continue
		case opCondJump:
			if op.c >= 0 {
				fr.marks[op.c] = in.Steps
			}
			var ok bool
			ok, err = in.vmCondEval(p.exprs[op.a])
			if err == nil && !ok {
				pc = int(op.b)
				continue
			}
		case opLoopBottom:
			// An iteration that evaluated no commands (empty body,
			// command-free condition) still burns one step: without this a
			// hostile agent could spin `while {1} {}` for free under guard
			// metering. Mirrors the same charge in the tree-walk builtins.
			if fr.marks[op.a] == in.Steps {
				err = in.chargeStep(int(op.line))
			}
			if err == nil {
				pc = int(op.b)
				continue
			}
		case opForeachInit:
			n := len(in.argScratch)
			var elems []string
			elems, err = ParseList(in.argScratch[n-1])
			in.argScratch = in.argScratch[:n-1]
			if err == nil {
				fr.lists[op.a] = elems
				fr.idxs[op.a] = 0
			}
		case opForeachNext:
			i := fr.idxs[op.a]
			elems := fr.lists[op.a]
			if i >= len(elems) {
				pc = int(op.b)
				continue
			}
			fr.marks[op.a] = in.Steps
			in.setVar(p.consts[op.c], elems[i])
			fr.idxs[op.a] = i + 1
		case opExpr:
			var res string
			res, err = vmExprEval(in, p.exprs[op.a])
			if err != nil && !isControl(err) {
				err = decorate(err, "expr", int(op.line))
			}
			if err == nil {
				result = res
			}
		case opResult:
			result = p.consts[op.a]
		case opDepth:
			in.depth++
			if in.depth > maxDepth {
				err = ErrDepth // the depth region undoes the increment
			}
		case opArgResult:
			in.depth--
			in.argScratch = append(in.argScratch, result)
		}
		if err != nil {
			npc, scratch, nerr := p.recoverErr(in, pc, err)
			if nerr != nil {
				in.argScratch = in.argScratch[:base]
				return "", nerr
			}
			// Resuming inside the program: keep the enclosing pending call
			// args (see region.scratch), drop anything pushed above them.
			in.argScratch = in.argScratch[:base+scratch]
			pc = npc
			continue
		}
		pc++
	}
	return result, nil
}

// recoverErr walks the regions containing pc from innermost outward: loop
// regions consume break/continue (returning the resume pc and its arg-stack
// watermark), depth regions undo their opDepth increment as the error leaves
// the inlined [cmd], and decor regions add the enclosing construct's
// name-and-line frame to non-control errors — the exact composition the
// nested tree-walk builtins produce. Cold path.
func (p *program) recoverErr(in *Interp, pc int, err error) (int, int, error) {
	var hits []int
	for i := range p.regions {
		r := &p.regions[i]
		if int32(pc) >= r.start && int32(pc) < r.end {
			hits = append(hits, i)
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		ra, rb := &p.regions[hits[a]], &p.regions[hits[b]]
		return ra.end-ra.start < rb.end-rb.start
	})
	for _, i := range hits {
		r := &p.regions[i]
		switch {
		case r.isLoop:
			// Exact sentinel identity, as the tree-walk loops test: a
			// break wrapped by expr's %w is an ordinary error here.
			if err == errBreak {
				return int(r.breakPC), int(r.scratch), nil
			}
			if err == errContinue {
				return int(r.contPC), int(r.scratch), nil
			}
		case r.isDepth:
			in.depth--
		default:
			if !isControl(err) {
				err = decorate(err, r.name, int(r.line))
			}
		}
	}
	return -1, 0, err
}

// cmdShadowed reports whether an inlined construct's name no longer
// resolves to the canonical builtin: a script proc, a per-activation
// Register override, or a table snapshot whose entry was replaced. Any of
// those sends the guard op down the generic-dispatch path.
func (in *Interp) cmdShadowed(sym *symbol, kind uint8) bool {
	if in.procs != nil {
		if _, ok := in.procs[sym.name]; ok {
			return true
		}
	}
	if in.commands != nil {
		if _, ok := in.commands[sym.name]; ok {
			return true
		}
	}
	return in.table.state.Load().canon&(1<<kind) == 0
}

// dispatchStatic calls a symbol-resolved command with the tree-walker's
// dispatch order: procs, per-interp overrides, then the table snapshot's
// dense array (map fallback covers symbols interned after the snapshot was
// built). Proc and control errors propagate raw; command errors get the
// name-and-line decoration evalCommand applies.
func (in *Interp) dispatchStatic(sym *symbol, args []string, line int) (string, error) {
	if in.procs != nil {
		if pd, ok := in.procs[sym.name]; ok {
			return in.callProc(pd, args, line)
		}
	}
	var fn CmdFunc
	if in.commands != nil {
		fn = in.commands[sym.name]
	}
	if fn == nil {
		st := in.table.state.Load()
		if int(sym.id) < len(st.dense) {
			fn = st.dense[sym.id]
		}
		if fn == nil {
			fn = st.cmds[sym.name]
		}
	}
	if fn == nil {
		return "", fmt.Errorf("tacl: line %d: unknown command %q", line, sym.name)
	}
	in.curLine = line
	res, err := fn(in, args)
	if err != nil && !isControl(err) {
		return "", decorate(err, sym.name, line)
	}
	return res, err
}

// dispatchDyn resolves a command whose name was produced at runtime
// (args[0]); shared by the VM's dynamic calls and the tree-walker's
// evalCommandTail.
func (in *Interp) dispatchDyn(args []string, line int) (string, error) {
	name := args[0]
	if pd, ok := in.procs[name]; ok {
		return in.callProc(pd, args[1:], line)
	}
	fn, ok := in.commands[name]
	if !ok {
		fn, ok = in.table.lookup(name)
	}
	if !ok {
		return "", fmt.Errorf("tacl: line %d: unknown command %q", line, name)
	}
	in.curLine = line
	res, err := fn(in, args[1:])
	if err != nil && !isControl(err) {
		return "", decorate(err, name, line)
	}
	return res, err
}

// vmCondEval evaluates a loop/branch condition to a boolean. Errors stay
// raw: the construct's decor region frames them, matching how the
// tree-walk builtins return condition errors undecorated to evalCommand.
func (in *Interp) vmCondEval(ref *exprRef) (bool, error) {
	if ref.isConst {
		return ref.constTruthy, ref.constTruthyErr
	}
	v, err := vmExprEval(in, ref)
	if err != nil {
		return false, err
	}
	return Truthy(v)
}

// vmExprEval mirrors evalExpr for a precompiled operand: folded constant,
// compiled AST with the standard "expr %q" wrap, or the reference
// string-walking evaluator when compilation failed.
func vmExprEval(in *Interp, ref *exprRef) (string, error) {
	if ref.isConst {
		return ref.constVal, nil
	}
	if ref.prog == nil {
		return evalExprDirect(in, ref.src)
	}
	v, err := ref.prog.root.eval(in)
	if err != nil {
		return "", fmt.Errorf("expr %q: %w", ref.src, err)
	}
	return v.text(), nil
}
