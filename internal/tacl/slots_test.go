package tacl

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSetGlobalSlotMigration pins the host-binding contract: a SetGlobal
// before the first eval lands in the map, the first variable-bearing
// program migrates it into its slot, and from then on host writes and
// script writes share that one storage location.
func TestSetGlobalSlotMigration(t *testing.T) {
	in := New()
	in.SetGlobal("host", "h1")
	out, err := in.Eval(`set copy $host; set copy`)
	if err != nil || out != "h1" {
		t.Fatalf("pre-bind global: got %q, %v", out, err)
	}
	if _, stale := in.globals["host"]; stale {
		t.Error("slotted name still stored in the globals map after migration")
	}
	if i := in.gscope.slotOf("host"); i < 0 || in.gscope.slots[i] != "h1" {
		t.Errorf("migrated value not in its slot (idx %d)", i)
	}

	in.SetGlobal("host", "h2")
	if out, err = in.Eval(`set copy $host; set copy`); err != nil || out != "h2" {
		t.Fatalf("post-bind SetGlobal not visible to script: got %q, %v", out, err)
	}
	if v, ok := in.Global("host"); !ok || v != "h2" {
		t.Errorf("Global read = %q, %v", v, ok)
	}

	// A name outside the bound layout keeps working through the map.
	in.SetGlobal("offlayout", "m1")
	if v, ok := in.Global("offlayout"); !ok || v != "m1" {
		t.Errorf("off-layout Global read = %q, %v", v, ok)
	}
	if out, err = in.Eval(`set offlayout`); err != nil || out != "m1" {
		t.Fatalf("off-layout read through script: got %q, %v", out, err)
	}
}

// TestParkUnwindsLiveSlotFrames parks from inside a proc whose frame holds
// a bound slot array (and a spilled computed name): on every engine the
// park must unwind all frames, and the proc-local slot value must not leak
// into the global scope's same-named slot.
func TestParkUnwindsLiveSlotFrames(t *testing.T) {
	const src = "proc f {} { set x 99; set name y; set $name 1; park w }\nset x 1\nf"
	for _, e := range allEngines {
		in := New()
		in.SetEngine(e.engine)
		in.Register("park", func(_ *Interp, args []string) (string, error) {
			return "", ParkSignal(args[0])
		})
		_, err := in.Eval(src)
		if n, ok := IsPark(err); !ok || n != "w" {
			t.Fatalf("engine %s: want park \"w\", got %v", e.name, err)
		}
		if len(in.frames) != 0 {
			t.Errorf("engine %s: %d proc frames leaked past the park", e.name, len(in.frames))
		}
		out, err := in.Eval(`list $x [info exists y]`)
		if err != nil || out != "1 0" {
			t.Errorf("engine %s: state after park = %q, %v (want \"1 0\")", e.name, out, err)
		}
	}
}

// TestPutDropsOversizedInterpState checks the pool-hygiene caps: an interp
// whose activation grew a giant globals map or slot array hands neither
// back to the pool. White-box: reads the struct right after Put, before
// anything else can draw it from the pool.
func TestPutDropsOversizedInterpState(t *testing.T) {
	in := Get(NewTable())
	in.gscope.slots = make([]string, 0, maxPooledSlots+1)
	in.gscope.meta = make([]uint8, 0, maxPooledSlots+1)
	old := in.globals
	for i := 0; i <= maxPooledVars; i++ {
		in.globals[fmt.Sprintf("g%d", i)] = "x"
	}
	Put(in)
	if in.gscope.slots != nil || in.gscope.meta != nil {
		t.Errorf("oversized global slot array retained (cap %d)", cap(in.gscope.slots))
	}
	if len(in.globals) != 0 {
		t.Errorf("globals not cleared: %d entries", len(in.globals))
	}
	if reflect.ValueOf(in.globals).Pointer() == reflect.ValueOf(old).Pointer() {
		t.Error("oversized globals map retained instead of replaced")
	}
}

// TestPutFrameDropsOversizedState is the per-frame half: a recycled proc
// frame keeps small maps and slot arrays but drops ones grown past the cap.
func TestPutFrameDropsOversizedState(t *testing.T) {
	in := New()

	f := in.getFrame()
	f.slots = make([]string, maxPooledSlots+1)
	f.meta = make([]uint8, maxPooledSlots+1)
	oldVars := f.vars
	for i := 0; i <= maxPooledVars; i++ {
		f.vars[fmt.Sprintf("v%d", i)] = "x"
	}
	in.putFrame(f)
	got := in.freeFrames[len(in.freeFrames)-1]
	if got.slots != nil || got.meta != nil {
		t.Errorf("oversized frame slot array retained (cap %d)", cap(got.slots))
	}
	if len(got.vars) != 0 {
		t.Errorf("frame vars not cleared: %d entries", len(got.vars))
	}
	if reflect.ValueOf(got.vars).Pointer() == reflect.ValueOf(oldVars).Pointer() {
		t.Error("oversized frame vars map retained instead of replaced")
	}

	// Under-cap state is recycled in place, scrubbed.
	f2 := in.getFrame()
	f2.slots = append(f2.slots[:0], "a", "b")
	f2.meta = append(f2.meta[:0], slotLive, slotLive)
	f2.vars["k"] = "v"
	keep := f2.slots[:cap(f2.slots)]
	in.putFrame(f2)
	got2 := in.freeFrames[len(in.freeFrames)-1]
	if cap(got2.slots) == 0 || len(got2.slots) != 0 {
		t.Errorf("small slot array not recycled: len %d cap %d", len(got2.slots), cap(got2.slots))
	}
	for i := range keep {
		if keep[i] != "" {
			t.Errorf("recycled slot %d still pins %q", i, keep[i])
		}
	}
}
