package tacl

import (
	"strings"
	"testing"
)

func exprCases(t *testing.T, cases map[string]string) {
	t.Helper()
	for src, want := range cases {
		in := New()
		got, err := in.Eval(`expr {` + src + `}`)
		if err != nil {
			t.Errorf("expr {%s} error: %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("expr {%s} = %q, want %q", src, got, want)
		}
	}
}

func TestExprArithmetic(t *testing.T) {
	exprCases(t, map[string]string{
		`1 + 2`:       "3",
		`10 - 4`:      "6",
		`6 * 7`:       "42",
		`7 / 2`:       "3",
		`-7 / 2`:      "-4", // Tcl floors integer division
		`7 % 3`:       "1",
		`-7 % 3`:      "2", // flooring mod
		`2 + 3 * 4`:   "14",
		`(2 + 3) * 4`: "20",
		`-5 + 3`:      "-2",
		`+5`:          "5",
		`2.5 + 1.5`:   "4.0",
		`1 + 2.5`:     "3.5",
		`10 / 4.0`:    "2.5",
	})
}

func TestExprComparison(t *testing.T) {
	exprCases(t, map[string]string{
		`1 < 2`:          "1",
		`2 < 1`:          "0",
		`2 <= 2`:         "1",
		`3 > 2`:          "1",
		`3 >= 4`:         "0",
		`1 == 1`:         "1",
		`1 == 1.0`:       "1",
		`1 != 2`:         "1",
		`abc eq abc`:     "1",
		`abc eq abd`:     "0",
		`abc ne abd`:     "1",
		`apple < banana`: "1", // string comparison for non-numbers
	})
}

func TestExprLogical(t *testing.T) {
	exprCases(t, map[string]string{
		`1 && 1`:         "1",
		`1 && 0`:         "0",
		`0 || 1`:         "1",
		`0 || 0`:         "0",
		`!0`:             "1",
		`!1`:             "0",
		`!!5`:            "1",
		`1 < 2 && 3 < 4`: "1",
		`true && true`:   "1",
		`false || true`:  "1",
	})
}

func TestExprTernary(t *testing.T) {
	exprCases(t, map[string]string{
		`1 ? 10 : 20`:       "10",
		`0 ? 10 : 20`:       "20",
		`2 > 1 ? 5 : 6`:     "5",
		`0 ? 1 : 0 ? 2 : 3`: "3", // right-associative
	})
}

func TestExprFunctions(t *testing.T) {
	exprCases(t, map[string]string{
		`abs(-5)`:         "5",
		`abs(5)`:          "5",
		`abs(-2.5)`:       "2.5",
		`int(3.9)`:        "3",
		`round(3.5)`:      "4",
		`round(3.4)`:      "3",
		`floor(3.9)`:      "3.0",
		`ceil(3.1)`:       "4.0",
		`sqrt(16)`:        "4.0",
		`pow(2, 10)`:      "1024.0",
		`min(3, 1, 2)`:    "1",
		`max(3, 1, 2)`:    "3",
		`double(5)`:       "5.0",
		`fmod(7.5, 2)`:    "1.5",
		`abs(min(-3, 2))`: "3",
	})
}

func TestExprVariables(t *testing.T) {
	in := New()
	got, err := in.Eval(`set x 4; expr {$x * $x + 1}`)
	if err != nil || got != "17" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestExprCommandSubstitution(t *testing.T) {
	in := New()
	got, err := in.Eval(`proc two {} {return 2}; expr {[two] + 3}`)
	if err != nil || got != "5" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestExprQuotedStrings(t *testing.T) {
	exprCases(t, map[string]string{
		`"abc" eq "abc"`: "1",
		`"a b" eq "a b"`: "1",
		`"5" + 3`:        "8",
	})
}

func TestExprErrors(t *testing.T) {
	bad := []string{
		`1 +`,
		`1 / 0`,
		`7 % 0`,
		`abc + 1`,
		`(1 + 2`,
		`sqrt(-1)`,
		`nosuchfn(1)`,
		`1 ? 2`,
		`fmod(1, 0)`,
		``,
	}
	for _, src := range bad {
		in := New()
		if _, err := in.Eval(`expr {` + src + `}`); err == nil {
			t.Errorf("expr {%s} succeeded, want error", src)
		}
	}
}

func TestExprDivisionByZeroMessage(t *testing.T) {
	in := New()
	_, err := in.Eval(`expr {1 / 0}`)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestExprScientificNotation(t *testing.T) {
	exprCases(t, map[string]string{
		`1e3 + 0`:   "1000.0",
		`1.5e2 + 0`: "150.0",
		`2e-1 + 0`:  "0.2",
	})
}

func TestExprUnbracedArgs(t *testing.T) {
	// expr joins multiple args with spaces.
	in := New()
	got, err := in.Eval(`expr 1 + 2`)
	if err != nil || got != "3" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestExprLargeIntegers(t *testing.T) {
	exprCases(t, map[string]string{
		`1000000000 * 4`:       "4000000000",
		`9007199254740993 + 0`: "9007199254740993", // beyond float53 precision
	})
}
