package tacl

import (
	"fmt"
	"strconv"
	"strings"
)

// TacL values are strings; lists are strings in Tcl list syntax: elements
// separated by whitespace, with braces quoting elements that contain
// special characters. FormatList and ParseList are inverses for all inputs.

// FormatList renders elements as a TacL list string.
func FormatList(elems []string) string {
	var sb strings.Builder
	for i, e := range elems {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(quoteElem(e))
	}
	return sb.String()
}

func quoteElem(e string) string {
	if e == "" {
		return "{}"
	}
	if !needsQuote(e) {
		return e
	}
	if bracesBalanced(e) && !strings.HasSuffix(e, "\\") {
		return "{" + e + "}"
	}
	// Fall back to backslash escaping.
	var sb strings.Builder
	for i := 0; i < len(e); i++ {
		c := e[i]
		switch c {
		case ' ', '\t', ';', '"', '{', '}', '[', ']', '$', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString("\\n")
		case '\r':
			sb.WriteString("\\r")
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// needsQuote must cover every byte ParseList treats as a separator (isSpace:
// space, tab, newline, carriage return) or as syntax; a bare element
// containing any of them would not survive the round trip.
func needsQuote(e string) bool {
	return strings.ContainsAny(e, " \t\n\r;\"{}[]$\\")
}

func bracesBalanced(e string) bool {
	nest := 0
	for i := 0; i < len(e); i++ {
		switch e[i] {
		case '\\':
			i++ // skip escaped char
		case '{':
			nest++
		case '}':
			nest--
			if nest < 0 {
				return false
			}
		}
	}
	return nest == 0
}

// ParseList splits a TacL list string into its elements. No variable or
// command substitution is performed.
func ParseList(s string) ([]string, error) {
	var elems []string
	i := 0
	n := len(s)
	for {
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n {
			return elems, nil
		}
		switch s[i] {
		case '{':
			nest := 1
			j := i + 1
			for j < n && nest > 0 {
				switch s[j] {
				case '\\':
					j++
				case '{':
					nest++
				case '}':
					nest--
				}
				j++
			}
			if nest != 0 {
				return nil, fmt.Errorf("tacl: unmatched open-brace in list")
			}
			elems = append(elems, s[i+1:j-1])
			i = j
			if i < n && !isSpace(s[i]) {
				return nil, fmt.Errorf("tacl: list element in braces followed by %q", s[i])
			}
		case '"':
			var sb strings.Builder
			j := i + 1
			for j < n && s[j] != '"' {
				if s[j] == '\\' && j+1 < n {
					j++
					sb.WriteByte(unescapeChar(s[j]))
				} else {
					sb.WriteByte(s[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("tacl: unmatched quote in list")
			}
			elems = append(elems, sb.String())
			i = j + 1
			if i < n && !isSpace(s[i]) {
				return nil, fmt.Errorf("tacl: list element in quotes followed by %q", s[i])
			}
		default:
			var sb strings.Builder
			j := i
			for j < n && !isSpace(s[j]) {
				if s[j] == '\\' && j+1 < n {
					j++
					sb.WriteByte(unescapeChar(s[j]))
				} else {
					sb.WriteByte(s[j])
				}
				j++
			}
			elems = append(elems, sb.String())
			i = j
		}
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func unescapeChar(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	default:
		return c
	}
}

// Truthy interprets a string as a boolean the way Tcl conditions do.
func Truthy(s string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "true", "yes", "on":
		return true, nil
	case "0", "false", "no", "off", "":
		return false, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f != 0, nil
	}
	return false, fmt.Errorf("tacl: expected boolean, got %q", s)
}

// FormatBool renders a boolean as TacL's canonical 1/0.
func FormatBool(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
