package tacl

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// registerBuiltinsInto fills a command map with the full builtin set; the
// shared builtin Table is built from it exactly once (see builtinTable).
func registerBuiltinsInto(dst map[string]CmdFunc) {
	b := map[string]CmdFunc{
		"set":      cmdSet,
		"unset":    cmdUnset,
		"incr":     cmdIncr,
		"append":   cmdAppend,
		"global":   cmdGlobal,
		"expr":     cmdExpr,
		"if":       cmdIf,
		"while":    cmdWhile,
		"for":      cmdFor,
		"foreach":  cmdForeach,
		"proc":     cmdProc,
		"return":   cmdReturn,
		"break":    cmdBreak,
		"continue": cmdContinue,
		"error":    cmdError,
		"catch":    cmdCatch,
		"eval":     cmdEval,
		"puts":     cmdPuts,
		"list":     cmdList,
		"lindex":   cmdLindex,
		"llength":  cmdLlength,
		"lappend":  cmdLappend,
		"lrange":   cmdLrange,
		"lsearch":  cmdLsearch,
		"lreverse": cmdLreverse,
		"lsort":    cmdLsort,
		"join":     cmdJoin,
		"split":    cmdSplit,
		"concat":   cmdConcat,
		"string":   cmdString,
		"format":   cmdFormat,
		"info":     cmdInfo,
	}
	for name, fn := range b {
		dst[name] = fn
	}
	for name, fn := range extraBuiltins {
		dst[name] = fn
	}
}

func arity(args []string, min, max int, usage string) error {
	if len(args) < min || (max >= 0 && len(args) > max) {
		return fmt.Errorf("wrong # args: should be %q", usage)
	}
	return nil
}

func cmdSet(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "set varName ?value?"); err != nil {
		return "", err
	}
	if len(args) == 1 {
		return in.getVar(args[0])
	}
	in.setVar(args[0], args[1])
	return args[1], nil
}

func cmdUnset(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "unset varName ?varName ...?"); err != nil {
		return "", err
	}
	for _, name := range args {
		if err := in.unsetVar(name); err != nil {
			return "", err
		}
	}
	return "", nil
}

func cmdIncr(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "incr varName ?increment?"); err != nil {
		return "", err
	}
	delta := int64(1)
	if len(args) == 2 {
		var err error
		delta, err = strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "", fmt.Errorf("expected integer increment, got %q", args[1])
		}
	}
	return in.incrVar(args[0], delta)
}

// incrVar is the shared increment core behind cmdIncr and the VM's inlined
// opIncrSlot slow path.
func (in *Interp) incrVar(name string, delta int64) (string, error) {
	cur := "0"
	if in.varExists(name) {
		var err error
		cur, err = in.getVar(name)
		if err != nil {
			return "", err
		}
	}
	n, err := strconv.ParseInt(cur, 10, 64)
	if err != nil {
		return "", fmt.Errorf("expected integer in %q, got %q", name, cur)
	}
	v := strconv.FormatInt(n+delta, 10)
	in.setVar(name, v)
	return v, nil
}

func cmdAppend(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "append varName ?value ...?"); err != nil {
		return "", err
	}
	var sb strings.Builder
	if in.varExists(args[0]) {
		v, err := in.getVar(args[0])
		if err != nil {
			return "", err
		}
		sb.WriteString(v)
	}
	for _, a := range args[1:] {
		sb.WriteString(a)
	}
	in.setVar(args[0], sb.String())
	return sb.String(), nil
}

func cmdGlobal(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "global varName ?varName ...?"); err != nil {
		return "", err
	}
	f := in.currentFrame()
	if f == nil {
		return "", nil // at top level all variables are global already
	}
	for _, name := range args {
		f.global[name] = true
	}
	// Slot fast paths assume every name in the frame's layout lives in its
	// slot array; a global link redirects resolution elsewhere, so divert
	// this frame's slot ops to the full resolver for the rest of its life.
	f.diverted = true
	return "", nil
}

func cmdExpr(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "expr arg ?arg ...?"); err != nil {
		return "", err
	}
	return evalExpr(in, strings.Join(args, " "))
}

func cmdIf(in *Interp, args []string) (string, error) {
	// if cond body ?elseif cond body ...? ?else body?
	i := 0
	for {
		if i+1 >= len(args) {
			return "", errors.New(`wrong # args: should be "if cond body ?elseif cond body? ?else body?"`)
		}
		cond, body := args[i], args[i+1]
		ok, err := exprTruthy(in, cond)
		if err != nil {
			return "", err
		}
		if ok {
			return in.EvalCached(body)
		}
		i += 2
		if i >= len(args) {
			return "", nil
		}
		switch args[i] {
		case "elseif":
			i++
		case "else":
			if i+1 != len(args)-1 {
				return "", errors.New("extra args after else body")
			}
			return in.EvalCached(args[i+1])
		default:
			return "", fmt.Errorf("expected elseif or else, got %q", args[i])
		}
	}
}

func cmdWhile(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2, "while cond body"); err != nil {
		return "", err
	}
	line := in.curLine
	for {
		s0 := in.Steps
		ok, err := exprTruthy(in, args[0])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		if _, err := in.EvalCached(args[1]); err != nil {
			if err == errBreak {
				return "", nil
			}
			if err != errContinue {
				return "", err
			}
		}
		// An iteration that evaluated no commands (empty body, command-free
		// condition) still burns one step: without this a hostile agent
		// could spin `while {1} {}` for free under guard metering. Mirrored
		// by the VM's loop-bottom op.
		if in.Steps == s0 {
			if err := in.chargeStep(line); err != nil {
				return "", err
			}
		}
	}
}

func cmdFor(in *Interp, args []string) (string, error) {
	if err := arity(args, 4, 4, "for init cond step body"); err != nil {
		return "", err
	}
	line := in.curLine
	if _, err := in.EvalCached(args[0]); err != nil {
		return "", err
	}
	for {
		s0 := in.Steps
		ok, err := exprTruthy(in, args[1])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		if _, err := in.EvalCached(args[3]); err != nil {
			if err == errBreak {
				return "", nil
			}
			if err != errContinue {
				return "", err
			}
		}
		if _, err := in.EvalCached(args[2]); err != nil {
			return "", err
		}
		// Charge spin iterations that evaluated no commands; see cmdWhile.
		if in.Steps == s0 {
			if err := in.chargeStep(line); err != nil {
				return "", err
			}
		}
	}
}

func cmdForeach(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "foreach varName list body"); err != nil {
		return "", err
	}
	line := in.curLine
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	for _, e := range elems {
		s0 := in.Steps
		in.setVar(args[0], e)
		if _, err := in.EvalCached(args[2]); err != nil {
			if err == errBreak {
				return "", nil
			}
			if err != errContinue {
				return "", err
			}
		}
		// Charge iterations whose body evaluated no commands; see cmdWhile.
		if in.Steps == s0 {
			if err := in.chargeStep(line); err != nil {
				return "", err
			}
		}
	}
	return "", nil
}

func cmdProc(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "proc name params body"); err != nil {
		return "", err
	}
	params, err := parseParams(args[1])
	if err != nil {
		return "", err
	}
	body, err := ParseCached(args[2])
	if err != nil {
		return "", err
	}
	if in.procs == nil {
		in.procs = make(map[string]*procDef, 8)
	}
	in.procs[args[0]] = &procDef{name: args[0], params: params, body: body}
	in.canonState = nil // the new proc may shadow an inlinable builtin
	return "", nil
}

func parseParams(spec string) ([]procParam, error) {
	items, err := ParseList(spec)
	if err != nil {
		return nil, err
	}
	params := make([]procParam, 0, len(items))
	for i, item := range items {
		parts, err := ParseList(item)
		if err != nil {
			return nil, err
		}
		switch {
		case len(parts) == 1 && parts[0] == "args" && i == len(items)-1:
			params = append(params, procParam{name: "args", variadic: true})
		case len(parts) == 1:
			params = append(params, procParam{name: parts[0]})
		case len(parts) == 2:
			params = append(params, procParam{name: parts[0], def: parts[1], hasDef: true})
		default:
			return nil, fmt.Errorf("bad parameter spec %q", item)
		}
	}
	return params, nil
}

func cmdReturn(in *Interp, args []string) (string, error) {
	if err := arity(args, 0, 1, "return ?value?"); err != nil {
		return "", err
	}
	v := ""
	if len(args) == 1 {
		v = args[0]
	}
	return "", &returnSignal{value: v}
}

func cmdBreak(in *Interp, args []string) (string, error)    { return "", errBreak }
func cmdContinue(in *Interp, args []string) (string, error) { return "", errContinue }

// userError carries a script-raised error message verbatim, so catch
// observes exactly the string passed to the error command.
type userError struct{ msg string }

func (e *userError) Error() string { return e.msg }

func cmdError(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 1, "error message"); err != nil {
		return "", err
	}
	return "", &userError{msg: args[0]}
}

func cmdCatch(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "catch body ?varName?"); err != nil {
		return "", err
	}
	res, err := in.EvalCached(args[0])
	if err != nil {
		// Control-flow signals pass through; catch only traps errors, and
		// budget exhaustion must not be catchable or a hostile agent could
		// outlive its allotment.
		if isControl(err) || errors.Is(err, ErrBudget) {
			return "", err
		}
		if len(args) == 2 {
			in.setVar(args[1], err.Error())
		}
		return "1", nil
	}
	if len(args) == 2 {
		in.setVar(args[1], res)
	}
	return "0", nil
}

func cmdEval(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "eval script ?script ...?"); err != nil {
		return "", err
	}
	in.depth++
	if in.depth > maxDepth {
		in.depth--
		return "", ErrDepth
	}
	defer func() { in.depth-- }()
	return in.EvalCached(strings.Join(args, " "))
}

func cmdPuts(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "puts ?-nonewline? string"); err != nil {
		return "", err
	}
	nl := "\n"
	s := args[0]
	if len(args) == 2 {
		if args[0] != "-nonewline" {
			return "", fmt.Errorf("bad option %q", args[0])
		}
		nl, s = "", args[1]
	}
	fmt.Fprint(in.Out, s+nl)
	return "", nil
}

func cmdList(in *Interp, args []string) (string, error) {
	return FormatList(args), nil
}

func listIndex(idxStr string, n int) (int, error) {
	if idxStr == "end" {
		return n - 1, nil
	}
	if rest, ok := strings.CutPrefix(idxStr, "end-"); ok {
		k, err := strconv.Atoi(rest)
		if err != nil {
			return 0, fmt.Errorf("bad index %q", idxStr)
		}
		return n - 1 - k, nil
	}
	i, err := strconv.Atoi(idxStr)
	if err != nil {
		return 0, fmt.Errorf("bad index %q", idxStr)
	}
	return i, nil
}

func cmdLindex(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2, "lindex list index"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	i, err := listIndex(args[1], len(elems))
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(elems) {
		return "", nil // Tcl returns empty for out-of-range lindex
	}
	return elems[i], nil
}

func cmdLlength(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 1, "llength list"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	return strconv.Itoa(len(elems)), nil
}

func cmdLappend(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "lappend varName ?value ...?"); err != nil {
		return "", err
	}
	cur := ""
	if in.varExists(args[0]) {
		var err error
		cur, err = in.getVar(args[0])
		if err != nil {
			return "", err
		}
	}
	elems, err := ParseList(cur)
	if err != nil {
		return "", err
	}
	elems = append(elems, args[1:]...)
	v := FormatList(elems)
	in.setVar(args[0], v)
	return v, nil
}

func cmdLrange(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "lrange list first last"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	first, err := listIndex(args[1], len(elems))
	if err != nil {
		return "", err
	}
	last, err := listIndex(args[2], len(elems))
	if err != nil {
		return "", err
	}
	if first < 0 {
		first = 0
	}
	if last >= len(elems) {
		last = len(elems) - 1
	}
	if first > last {
		return "", nil
	}
	return FormatList(elems[first : last+1]), nil
}

func cmdLsearch(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2, "lsearch list pattern"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	for i, e := range elems {
		if e == args[1] {
			return strconv.Itoa(i), nil
		}
	}
	return "-1", nil
}

func cmdLreverse(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 1, "lreverse list"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	for i, j := 0, len(elems)-1; i < j; i, j = i+1, j-1 {
		elems[i], elems[j] = elems[j], elems[i]
	}
	return FormatList(elems), nil
}

func cmdLsort(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "lsort ?-integer? list"); err != nil {
		return "", err
	}
	numeric := false
	lst := args[0]
	if len(args) == 2 {
		if args[0] != "-integer" {
			return "", fmt.Errorf("bad option %q", args[0])
		}
		numeric, lst = true, args[1]
	}
	elems, err := ParseList(lst)
	if err != nil {
		return "", err
	}
	if numeric {
		var convErr error
		sort.SliceStable(elems, func(i, j int) bool {
			a, err1 := strconv.ParseInt(elems[i], 10, 64)
			b, err2 := strconv.ParseInt(elems[j], 10, 64)
			if err1 != nil || err2 != nil {
				convErr = fmt.Errorf("expected integer in list")
			}
			return a < b
		})
		if convErr != nil {
			return "", convErr
		}
	} else {
		sort.Strings(elems)
	}
	return FormatList(elems), nil
}

func cmdJoin(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "join list ?separator?"); err != nil {
		return "", err
	}
	sep := " "
	if len(args) == 2 {
		sep = args[1]
	}
	elems, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	return strings.Join(elems, sep), nil
}

func cmdSplit(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "split string ?chars?"); err != nil {
		return "", err
	}
	chars := " \t\n\r"
	if len(args) == 2 {
		chars = args[1]
	}
	if chars == "" {
		parts := make([]string, 0, len(args[0]))
		for _, r := range args[0] {
			parts = append(parts, string(r))
		}
		return FormatList(parts), nil
	}
	parts := strings.FieldsFunc(args[0], func(r rune) bool {
		return strings.ContainsRune(chars, r)
	})
	return FormatList(parts), nil
}

func cmdConcat(in *Interp, args []string) (string, error) {
	trimmed := make([]string, 0, len(args))
	for _, a := range args {
		a = strings.TrimSpace(a)
		if a != "" {
			trimmed = append(trimmed, a)
		}
	}
	return strings.Join(trimmed, " "), nil
}

func cmdString(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, -1, "string subcommand arg ?arg ...?"); err != nil {
		return "", err
	}
	sub := args[0]
	rest := args[1:]
	if out, handled, err := stringExtra(sub, rest); handled {
		return out, err
	}
	switch sub {
	case "length":
		return strconv.Itoa(len(rest[0])), nil
	case "tolower":
		return strings.ToLower(rest[0]), nil
	case "toupper":
		return strings.ToUpper(rest[0]), nil
	case "trim":
		return strings.TrimSpace(rest[0]), nil
	case "index":
		if len(rest) != 2 {
			return "", errors.New(`wrong # args: should be "string index string charIndex"`)
		}
		i, err := listIndex(rest[1], len(rest[0]))
		if err != nil {
			return "", err
		}
		if i < 0 || i >= len(rest[0]) {
			return "", nil
		}
		return string(rest[0][i]), nil
	case "range":
		if len(rest) != 3 {
			return "", errors.New(`wrong # args: should be "string range string first last"`)
		}
		first, err := listIndex(rest[1], len(rest[0]))
		if err != nil {
			return "", err
		}
		last, err := listIndex(rest[2], len(rest[0]))
		if err != nil {
			return "", err
		}
		if first < 0 {
			first = 0
		}
		if last >= len(rest[0]) {
			last = len(rest[0]) - 1
		}
		if first > last {
			return "", nil
		}
		return rest[0][first : last+1], nil
	case "repeat":
		if len(rest) != 2 {
			return "", errors.New(`wrong # args: should be "string repeat string count"`)
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil || n < 0 {
			return "", fmt.Errorf("bad count %q", rest[1])
		}
		if n*len(rest[0]) > 1<<24 {
			return "", errors.New("string repeat result too large")
		}
		return strings.Repeat(rest[0], n), nil
	case "equal":
		if len(rest) != 2 {
			return "", errors.New(`wrong # args: should be "string equal a b"`)
		}
		return FormatBool(rest[0] == rest[1]), nil
	case "compare":
		if len(rest) != 2 {
			return "", errors.New(`wrong # args: should be "string compare a b"`)
		}
		return strconv.Itoa(strings.Compare(rest[0], rest[1])), nil
	case "first":
		if len(rest) != 2 {
			return "", errors.New(`wrong # args: should be "string first needle haystack"`)
		}
		return strconv.Itoa(strings.Index(rest[1], rest[0])), nil
	case "match":
		if len(rest) != 2 {
			return "", errors.New(`wrong # args: should be "string match pattern string"`)
		}
		return FormatBool(globMatch(rest[0], rest[1])), nil
	default:
		return "", fmt.Errorf("unknown string subcommand %q", sub)
	}
}

// globMatch implements Tcl's simple glob matching: * ? and literal chars.
func globMatch(pattern, s string) bool {
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '*':
		for i := 0; i <= len(s); i++ {
			if globMatch(pattern[1:], s[i:]) {
				return true
			}
		}
		return false
	case '?':
		return s != "" && globMatch(pattern[1:], s[1:])
	default:
		return s != "" && s[0] == pattern[0] && globMatch(pattern[1:], s[1:])
	}
}

func cmdFormat(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "format formatString ?arg ...?"); err != nil {
		return "", err
	}
	if out, ok := fastFormat(in, args[0], args[1:]); ok {
		return out, nil
	}
	// Translate the format string verb-by-verb so numeric verbs receive
	// proper Go types.
	spec := args[0]
	vals := args[1:]
	var out strings.Builder
	vi := 0
	for i := 0; i < len(spec); i++ {
		c := spec[i]
		if c != '%' {
			out.WriteByte(c)
			continue
		}
		j := i + 1
		for j < len(spec) && strings.ContainsRune("-+ 0123456789.", rune(spec[j])) {
			j++
		}
		if j >= len(spec) {
			return "", errors.New("format string ends with %")
		}
		verb := spec[j]
		flags := spec[i : j+1]
		if verb == '%' {
			out.WriteByte('%')
			i = j
			continue
		}
		if vi >= len(vals) {
			return "", errors.New("not enough arguments for format string")
		}
		arg := vals[vi]
		vi++
		switch verb {
		case 'd', 'i', 'x', 'X', 'o':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
			if err != nil {
				f, ferr := strconv.ParseFloat(arg, 64)
				if ferr != nil {
					return "", fmt.Errorf("expected integer for %%%c, got %q", verb, arg)
				}
				n = int64(f)
			}
			if verb == 'i' {
				flags = flags[:len(flags)-1] + "d"
			}
			fmt.Fprintf(&out, flags, n)
		case 'f', 'e', 'g':
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
			if err != nil {
				return "", fmt.Errorf("expected float for %%%c, got %q", verb, arg)
			}
			fmt.Fprintf(&out, flags, f)
		case 's', 'q':
			fmt.Fprintf(&out, flags, arg)
		default:
			return "", fmt.Errorf("unsupported format verb %%%c", verb)
		}
		i = j
	}
	if vi < len(vals) {
		return "", errors.New("extra arguments for format string")
	}
	return out.String(), nil
}

func cmdInfo(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "info subcommand ?arg?"); err != nil {
		return "", err
	}
	switch args[0] {
	case "exists":
		if len(args) != 2 {
			return "", errors.New(`wrong # args: should be "info exists varName"`)
		}
		return FormatBool(in.varExists(args[1])), nil
	case "commands":
		names := in.Commands()
		for p := range in.procs {
			names = append(names, p)
		}
		sort.Strings(names)
		return FormatList(names), nil
	case "procs":
		var names []string
		for p := range in.procs {
			names = append(names, p)
		}
		sort.Strings(names)
		return FormatList(names), nil
	case "steps":
		return strconv.Itoa(in.Steps), nil
	default:
		return "", fmt.Errorf("unknown info subcommand %q", args[0])
	}
}

// exprTruthy evaluates a condition string as an expression and coerces the
// result to a boolean.
func exprTruthy(in *Interp, cond string) (bool, error) {
	v, err := evalExpr(in, cond)
	if err != nil {
		return false, err
	}
	return Truthy(v)
}
