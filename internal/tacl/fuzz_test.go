package tacl

import (
	"errors"
	"testing"
)

// FuzzCompileEval differentially fuzzes the two expression engines:
// compile-then-run (production) against parse-per-eval (reference). The
// invariant is full observational equality: same result or same error
// text, same step count, same side-effect count. (When compilation fails,
// the production path falls back to the reference evaluator, so even
// malformed expressions with side-effecting operands behave identically.)
func FuzzCompileEval(f *testing.F) {
	seeds := []string{
		`1 + 2 * 3 - 4 / 2`,
		`$x > 3 && $y eq "abc"`,
		`1 > 2 ? "big" : $f`,
		`min(3, $x, 2) + max(1.5, $f)`,
		`!($x % 2) || abs(-$x) >= 5`,
		`[probe] + [probe]`,
		`{braced} eq "braced"`,
		`sqrt(pow($x, 2))`,
		`7 % 3 + -7 / 2`,
		`"1e2" == 100`,
		`$x + `,
		`nosuchfn(1)`,
		`(1 + 2`,
		`1 eq`,
		`$nosuchvar`,
		`0x`,
		`. + 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 120 {
			t.Skip()
		}
		run := func(direct bool) (string, error, int, int) {
			in := New()
			in.direct = direct
			in.MaxSteps = 200
			// The step budget only counts command evaluations, so a loop
			// whose body contains no commands could spin forever; loops add
			// nothing to expression coverage, so disable them (identically
			// on both sides — the invariant is unaffected).
			disabled := func(*Interp, []string) (string, error) {
				return "", errors.New("disabled under fuzzing")
			}
			for _, name := range []string{"while", "for", "foreach", "eval", "uplevel"} {
				in.Register(name, disabled)
			}
			in.SetGlobal("x", "5")
			in.SetGlobal("y", "abc")
			in.SetGlobal("f", "2.5")
			probe := 0
			in.Register("probe", func(*Interp, []string) (string, error) {
				probe++
				return "1", nil
			})
			out, err := evalExpr(in, src)
			return out, err, in.Steps, probe
		}
		outC, errC, stepsC, probeC := run(false)
		outD, errD, stepsD, probeD := run(true)
		errTextC, errTextD := "", ""
		if errC != nil {
			errTextC = errC.Error()
		}
		if errD != nil {
			errTextD = errD.Error()
		}
		if errTextC != errTextD {
			t.Fatalf("error divergence on %q:\n  compiled: %q, %q\n  direct:   %q, %q",
				src, outC, errTextC, outD, errTextD)
		}
		if errC == nil && outC != outD {
			t.Fatalf("result divergence on %q:\n  compiled: %q\n  direct:   %q", src, outC, outD)
		}
		if stepsC != stepsD || probeC != probeD {
			t.Fatalf("billing divergence on %q:\n  compiled: steps %d, probes %d\n  direct:   steps %d, probes %d",
				src, stepsC, probeC, stepsD, probeD)
		}
	})
}
