package tacl

import (
	"testing"
)

// fuzzRun evaluates src under one engine with a bounded interpreter and
// returns the observable outcome tuple the fuzz targets compare.
func fuzzRun(src string, engine Engine, script bool) (out, errText string, steps, probe int) {
	in := New()
	in.SetEngine(engine)
	in.MaxSteps = 200
	in.SetGlobal("x", "5")
	in.SetGlobal("y", "abc")
	in.SetGlobal("f", "2.5")
	in.Register("probe", func(*Interp, []string) (string, error) {
		probe++
		return "1", nil
	})
	var err error
	if script {
		out, err = in.Eval(src)
	} else {
		out, err = evalExpr(in, src)
	}
	if err != nil {
		out = ""
		errText = err.Error()
	}
	return out, errText, in.Steps, probe
}

// fuzzCompare runs src under all three engines and fails on any pairwise
// divergence in result, error text, step count, or side-effect count.
func fuzzCompare(t *testing.T, src string, script bool) {
	t.Helper()
	refOut, refErr, refSteps, refProbe := fuzzRun(src, EngineReference, script)
	for _, e := range []struct {
		name   string
		engine Engine
	}{{"vm", EngineVM}, {"ast", EngineAST}} {
		out, errText, steps, probe := fuzzRun(src, e.engine, script)
		if errText != refErr {
			t.Fatalf("error divergence on %q:\n  %-9s %q, %q\n  reference %q, %q",
				src, e.name+":", out, errText, refOut, refErr)
		}
		if errText == "" && out != refOut {
			t.Fatalf("result divergence on %q:\n  %-9s %q\n  reference %q", src, e.name+":", out, refOut)
		}
		if steps != refSteps || probe != refProbe {
			t.Fatalf("billing divergence on %q:\n  %-9s steps %d, probes %d\n  reference steps %d, probes %d",
				src, e.name+":", steps, probe, refSteps, refProbe)
		}
	}
}

// FuzzCompileEval differentially fuzzes expression evaluation across all
// three engines: the bytecode VM and the compiled-AST tree-walker against
// the parse-per-eval reference. The invariant is full observational
// equality: same result or same error text, same step count, same
// side-effect count. (When compilation fails, the faster engines fall back
// to the reference evaluator, so even malformed expressions with
// side-effecting operands behave identically.) Loops are enabled: the
// per-iteration step charge bounds even empty-body spins, so every input
// terminates within MaxSteps.
func FuzzCompileEval(f *testing.F) {
	seeds := []string{
		`1 + 2 * 3 - 4 / 2`,
		`$x > 3 && $y eq "abc"`,
		`1 > 2 ? "big" : $f`,
		`min(3, $x, 2) + max(1.5, $f)`,
		`!($x % 2) || abs(-$x) >= 5`,
		`[probe] + [probe]`,
		`{braced} eq "braced"`,
		`sqrt(pow($x, 2))`,
		`7 % 3 + -7 / 2`,
		`"1e2" == 100`,
		`$x + `,
		`nosuchfn(1)`,
		`(1 + 2`,
		`1 eq`,
		`$nosuchvar`,
		`0x`,
		`. + 1`,
		`[while {1} {}] + 1`,
		`[foreach q {a b} {}] eq ""`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 120 {
			t.Skip()
		}
		fuzzCompare(t, src, false)
	})
}

// FuzzVMScript differentially fuzzes whole-script execution: the bytecode
// compiler + VM (and the tree-walker it falls back to) against the
// reference engine, over scripts exercising control flow, procs, loops,
// substitution, and the step budget.
func FuzzVMScript(f *testing.F) {
	seeds := []string{
		`set i 0; while {$i < 10} { incr i }; set i`,
		`while {1} {}`,
		`for {set i 0} {$i < 5} {incr i} { probe }`,
		`foreach v {a b c} { if {$v eq "b"} { continue }; probe }`,
		`foreach v $y {}`,
		`if {$x > 3} { probe } elseif {$x > 1} { set r b } else { set r c }`,
		`proc add {a b} { expr {$a + $b} }; add $x 3`,
		`proc spin {} { spin }; spin`,
		`proc esc {} { break }; catch {esc} msg; set msg`,
		`set r {}; switch $y {abc {set r A} default {set r D}}; set r`,
		`catch {expr {1 / 0}} msg; set msg`,
		`eval set q 7 {;} incr q`,
		`set l [list a b "c d"]; lindex $l 2`,
		`format "%s=%d" $y $x`,
		`puts [string toupper $y]`,
		`while {[probe] < 3} { set x $x }`,
		`set x {unclosed`,
		`break`,
		`continue`,
		`return 5`,
		`unknowncmd a b`,
		// Slot↔map aliasing: computed names, global in nested procs,
		// unset/exists on slotted and spilled names, diverted frames.
		`set name v; set $name 7; info exists v`,
		`proc o {} { proc i {} { global g; incr g }; i }; set g 1; o; set g`,
		`set a 1; set name a; unset $name; catch {set a} msg; set msg`,
		`proc f {x} { upvar 1 $x v; set v 42 }; set t 0; f t; set t`,
		`proc f {} { set q 1; unset q; info exists q }; f`,
		`if {[format " %d " 2]} { set r yes }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 200 {
			t.Skip()
		}
		fuzzCompare(t, src, true)
	})
}
