package broker

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/folder"
)

// The paper's scheduling prototype uses an agent that "issues tickets to
// allow access to the service". TicketOffice implements it: tickets are
// HMAC-signed, bounded-use tokens. A service presented with a ticket asks
// the office to punch it; a ticket punched more times than it allows, or
// one with a forged signature, is rejected. Tickets let a provider admit
// exactly the work a broker scheduled onto it.

// Ticket errors.
var (
	ErrBadTicket   = errors.New("broker: invalid ticket")
	ErrTicketSpent = errors.New("broker: ticket uses exhausted")
)

// Ticket is a bounded-use access token for a service.
type Ticket struct {
	Service string
	ID      string
	Uses    int64
	Sig     string
}

// Encode renders the ticket as a folder element.
func (t Ticket) Encode() string {
	return strings.Join([]string{t.Service, t.ID, strconv.FormatInt(t.Uses, 10), t.Sig}, "|")
}

// DecodeTicket parses a ticket element.
func DecodeTicket(s string) (Ticket, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 {
		return Ticket{}, fmt.Errorf("%w: %q", ErrBadTicket, s)
	}
	uses, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Ticket{}, fmt.Errorf("%w: bad uses in %q", ErrBadTicket, s)
	}
	return Ticket{Service: parts[0], ID: parts[1], Uses: uses, Sig: parts[3]}, nil
}

// TicketOffice issues and punches tickets.
type TicketOffice struct {
	key     []byte
	mu      sync.Mutex
	punched map[string]int64 // ticket id -> punches so far
}

// NewTicketOffice creates an office with a fresh signing key.
func NewTicketOffice() *TicketOffice {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("broker: crypto/rand unavailable: " + err.Error())
	}
	return &TicketOffice{key: key, punched: make(map[string]int64)}
}

func (o *TicketOffice) sign(service, id string, uses int64) string {
	mac := hmac.New(sha256.New, o.key)
	fmt.Fprintf(mac, "%s|%s|%d", service, id, uses)
	return hex.EncodeToString(mac.Sum(nil))
}

// Issue creates a ticket admitting uses accesses to service.
func (o *TicketOffice) Issue(service string, uses int64) (Ticket, error) {
	if uses < 1 {
		return Ticket{}, fmt.Errorf("%w: non-positive uses %d", ErrBadTicket, uses)
	}
	var idb [12]byte
	if _, err := rand.Read(idb[:]); err != nil {
		panic("broker: crypto/rand unavailable: " + err.Error())
	}
	id := hex.EncodeToString(idb[:])
	return Ticket{Service: service, ID: id, Uses: uses, Sig: o.sign(service, id, uses)}, nil
}

// Punch validates a ticket for one access. It fails on forged signatures
// and on tickets whose allowed uses are exhausted.
func (o *TicketOffice) Punch(t Ticket) error {
	if !hmac.Equal([]byte(t.Sig), []byte(o.sign(t.Service, t.ID, t.Uses))) {
		return fmt.Errorf("%w: bad signature", ErrBadTicket)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.punched[t.ID] >= t.Uses {
		return fmt.Errorf("%w: %s", ErrTicketSpent, t.ID[:8])
	}
	o.punched[t.ID]++
	return nil
}

// Remaining reports unused punches on a ticket (0 for forged tickets).
func (o *TicketOffice) Remaining(t Ticket) int64 {
	if !hmac.Equal([]byte(t.Sig), []byte(o.sign(t.Service, t.ID, t.Uses))) {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return t.Uses - o.punched[t.ID]
}

// TicketAgent exposes the office as a meetable agent:
//
//	OP=issue: SERVICE, USES          -> TICKET
//	OP=punch: TICKET                 -> error when rejected
const (
	// TicketFolder carries an encoded ticket.
	TicketFolder = "TICKET"
	// UsesFolder carries the requested number of uses.
	UsesFolder = "USES"
)

// InstallTicketAgent registers a ticket agent at the site.
func InstallTicketAgent(site *core.Site) *TicketOffice {
	office := NewTicketOffice()
	site.Register(AgTicket, core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
		op, err := bc.GetString(OpFolder)
		if err != nil {
			return fmt.Errorf("%w: missing OP", ErrBadTicket)
		}
		switch op {
		case "issue":
			service, err := bc.GetString(ServiceFolder)
			if err != nil {
				return fmt.Errorf("%w: missing SERVICE", ErrBadTicket)
			}
			uses := int64(1)
			if u, err := bc.GetString(UsesFolder); err == nil {
				uses, err = strconv.ParseInt(u, 10, 64)
				if err != nil {
					return fmt.Errorf("%w: bad USES %q", ErrBadTicket, u)
				}
			}
			t, err := office.Issue(service, uses)
			if err != nil {
				return err
			}
			bc.PutString(TicketFolder, t.Encode())
			return nil
		case "punch":
			raw, err := bc.GetString(TicketFolder)
			if err != nil {
				return fmt.Errorf("%w: missing TICKET", ErrBadTicket)
			}
			t, err := DecodeTicket(raw)
			if err != nil {
				return err
			}
			return office.Punch(t)
		default:
			return fmt.Errorf("%w: unknown op %q", ErrBadTicket, op)
		}
	}))
	return office
}
