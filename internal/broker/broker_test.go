package broker

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

func testSystem(t *testing.T, n int) *core.System {
	t.Helper()
	sys := core.NewSystem(n, core.SystemConfig{Seed: 5, CallTimeout: 50 * time.Millisecond})
	t.Cleanup(sys.Wait)
	return sys
}

func TestRegisterAndLookup(t *testing.T) {
	b := NewBroker()
	b.Register("weather", "site-1", "wsvc", 1)
	b.Register("weather", "site-2", "wsvc", 1)
	b.Register("mail", "site-3", "msvc", 1)
	got := b.Lookup("weather")
	if len(got) != 2 {
		t.Fatalf("Lookup = %v", got)
	}
	if len(b.Lookup("nosuch")) != 0 {
		t.Fatal("phantom providers")
	}
}

func TestRegisterUpdateKeepsFreshness(t *testing.T) {
	b := NewBroker()
	b.Register("svc", "s1", "a", 1)
	b.Report("s1", 9, 5)
	b.Register("svc", "s1", "a", 4) // capacity upgrade
	rows := b.Table()
	if len(rows) != 1 || !strings.Contains(rows[0], "|9|5") {
		t.Fatalf("report lost on re-register: %v", rows)
	}
}

func TestPlacePicksLeastLoaded(t *testing.T) {
	b := NewBroker()
	b.Register("svc", "busy", "a", 1)
	b.Register("svc", "idle", "a", 1)
	b.Report("busy", 10, 1)
	b.Report("idle", 0, 1)
	site, _, err := b.Place("svc")
	if err != nil || site != "idle" {
		t.Fatalf("Place = %q, %v", site, err)
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	b := NewBroker()
	b.Register("svc", "small", "a", 1)
	b.Register("svc", "big", "a", 10)
	b.Report("small", 2, 1)
	b.Report("big", 5, 1) // 5/10 = 0.5 < 2/1
	site, _, err := b.Place("svc")
	if err != nil || site != "big" {
		t.Fatalf("Place = %q, %v", site, err)
	}
}

func TestPlaceOptimisticInFlight(t *testing.T) {
	// Consecutive placements between reports must spread, not pile onto
	// the same provider.
	b := NewBroker()
	b.Register("svc", "s1", "a", 1)
	b.Register("svc", "s2", "a", 1)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		site, _, err := b.Place("svc")
		if err != nil {
			t.Fatal(err)
		}
		counts[site]++
	}
	if counts["s1"] != 5 || counts["s2"] != 5 {
		t.Fatalf("placements not spread: %v", counts)
	}
}

func TestPlaceNoProvider(t *testing.T) {
	b := NewBroker()
	if _, _, err := b.Place("ghost"); !errors.Is(err, ErrNoProvider) {
		t.Fatalf("err = %v", err)
	}
}

func TestReportFreshnessOrdering(t *testing.T) {
	b := NewBroker()
	b.Register("svc", "s1", "a", 1)
	b.Report("s1", 5, 10)
	b.Report("s1", 99, 3) // stale, must be ignored
	rows := b.Table()
	if !strings.Contains(rows[0], "|5|10") {
		t.Fatalf("stale report applied: %v", rows)
	}
}

func TestGossipMergesFresher(t *testing.T) {
	b1 := NewBroker()
	b2 := NewBroker()
	b1.Register("svc", "s1", "a", 2)
	b1.Report("s1", 7, 4)
	b2.Register("svc", "s2", "a", 1)

	if err := b2.MergeTable(b1.Table()); err != nil {
		t.Fatal(err)
	}
	if len(b2.Lookup("svc")) != 2 {
		t.Fatalf("gossip did not merge: %v", b2.Lookup("svc"))
	}
	// Staler data must not overwrite.
	b2.Report("s1", 1, 9)
	if err := b2.MergeTable(b1.Table()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range b2.Table() {
		if strings.HasPrefix(row, "svc|s1|") && strings.Contains(row, "|1|9") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresher local data lost in merge: %v", b2.Table())
	}
}

func TestMergeTableBadRows(t *testing.T) {
	b := NewBroker()
	if err := b.MergeTable([]string{"not-a-row"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	if err := b.MergeTable([]string{"a|b|c|x|y|z"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestBrokerAgentOps(t *testing.T) {
	sys := testSystem(t, 2)
	bsite := sys.SiteAt(0)
	Install(bsite)

	do := func(fill func(bc *folder.Briefcase)) (*folder.Briefcase, error) {
		bc := folder.NewBriefcase()
		fill(bc)
		err := bsite.MeetClient(context.Background(), AgBroker, bc)
		return bc, err
	}

	if _, err := do(func(bc *folder.Briefcase) {
		bc.PutString(OpFolder, "register")
		bc.PutString(ServiceFolder, "predict")
		bc.PutString(SiteFolder, "site-1")
		bc.PutString(ProviderFolder, "expert")
		bc.PutString(CapacityFolder, "3")
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := do(func(bc *folder.Briefcase) {
		bc.PutString(OpFolder, "report")
		bc.PutString(SiteFolder, "site-1")
		bc.PutString(LoadFolder, "2")
		bc.PutString(SeqFolder, "1")
	}); err != nil {
		t.Fatal(err)
	}

	bc, err := do(func(bc *folder.Briefcase) {
		bc.PutString(OpFolder, "lookup")
		bc.PutString(ServiceFolder, "predict")
	})
	if err != nil {
		t.Fatal(err)
	}
	prov, _ := bc.Folder(ProvidersFolder)
	if prov.Len() != 1 || prov.Strings()[0] != "site-1/expert" {
		t.Fatalf("PROVIDERS = %v", prov.Strings())
	}

	bc, err = do(func(bc *folder.Briefcase) {
		bc.PutString(OpFolder, "place")
		bc.PutString(ServiceFolder, "predict")
	})
	if err != nil {
		t.Fatal(err)
	}
	chosen, _ := bc.Folder(ChosenFolder)
	if got := chosen.Strings(); got[0] != "site-1" || got[1] != "expert" {
		t.Fatalf("CHOSEN = %v", got)
	}

	if _, err := do(func(bc *folder.Briefcase) {
		bc.PutString(OpFolder, "nonsense")
	}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op err = %v", err)
	}
	if _, err := do(func(bc *folder.Briefcase) {}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("missing op err = %v", err)
	}
}

func TestBrokerAgentGossipExchange(t *testing.T) {
	sys := testSystem(t, 2)
	b0 := Install(sys.SiteAt(0))
	b1 := Install(sys.SiteAt(1))
	b0.Register("svc", "x", "a", 1)
	b1.Register("svc", "y", "a", 1)

	// Site-0's broker gossips with site-1's broker through a remote meet.
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "gossip")
	bc.Put(TableFolder, folder.OfStrings(b0.Table()...))
	if err := sys.SiteAt(0).RemoteMeet(context.Background(), "site-1", AgBroker, bc); err != nil {
		t.Fatal(err)
	}
	// The reply carries b1's merged table; fold it into b0.
	tf, _ := bc.Folder(TableFolder)
	if err := b0.MergeTable(tf.Strings()); err != nil {
		t.Fatal(err)
	}
	if len(b0.Lookup("svc")) != 2 || len(b1.Lookup("svc")) != 2 {
		t.Fatalf("tables not symmetric after gossip: %v / %v", b0.Table(), b1.Table())
	}
}

func TestProtectedAgentFlow(t *testing.T) {
	sys := testSystem(t, 1)
	site := sys.SiteAt(0)
	b := Install(site)

	// The protected agent registers under a secret name; clients only know
	// the alias.
	secret := "secret-name-51a9"
	b.Protect("oracle", secret)

	// A client queues a meeting request: the request element is itself an
	// encoded briefcase (folders are uninterpreted and typeless).
	inner := folder.NewBriefcase()
	inner.PutString("QUESTION", "will it storm?")
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "request")
	bc.PutString(ServiceFolder, "oracle")
	bc.Put(RequestFolder, folder.Of(folder.EncodeBriefcase(inner)))
	if err := site.MeetClient(context.Background(), AgBroker, bc); err != nil {
		t.Fatal(err)
	}

	// Only the holder of the real name can drain the queue.
	drainReq := folder.NewBriefcase()
	drainReq.PutString(OpFolder, "drain")
	drainReq.PutString(ServiceFolder, "oracle")
	drainReq.PutString(ProviderFolder, "wrong-name")
	if err := site.MeetClient(context.Background(), AgBroker, drainReq); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("drain with wrong name: %v", err)
	}

	drainReq = folder.NewBriefcase()
	drainReq.PutString(OpFolder, "drain")
	drainReq.PutString(ServiceFolder, "oracle")
	drainReq.PutString(ProviderFolder, secret)
	if err := site.MeetClient(context.Background(), AgBroker, drainReq); err != nil {
		t.Fatal(err)
	}
	reqs, _ := drainReq.Folder(RequestsFolder)
	if reqs.Len() != 1 {
		t.Fatalf("drained %d requests", reqs.Len())
	}
	raw, _ := reqs.At(0)
	decoded, err := folder.DecodeBriefcase(raw)
	if err != nil {
		t.Fatal(err)
	}
	if q, _ := decoded.GetString("QUESTION"); q != "will it storm?" {
		t.Fatalf("QUESTION = %q", q)
	}

	// Queue is emptied by drain.
	drain2 := folder.NewBriefcase()
	drain2.PutString(OpFolder, "drain")
	drain2.PutString(ServiceFolder, "oracle")
	drain2.PutString(ProviderFolder, secret)
	if err := site.MeetClient(context.Background(), AgBroker, drain2); err != nil {
		t.Fatal(err)
	}
	if reqs2, _ := drain2.Folder(RequestsFolder); reqs2.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRequestForUnknownAlias(t *testing.T) {
	sys := testSystem(t, 1)
	site := sys.SiteAt(0)
	Install(site)
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "request")
	bc.PutString(ServiceFolder, "nobody")
	bc.Put(RequestFolder, folder.OfStrings("x"))
	if err := site.MeetClient(context.Background(), AgBroker, bc); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestMonitorOnDemand(t *testing.T) {
	sys := testSystem(t, 1)
	m := NewMonitor(sys.SiteAt(0))
	m.LoadFn = func() int64 { return 42 }
	bc := folder.NewBriefcase()
	if err := sys.SiteAt(0).MeetClient(context.Background(), AgMonitor, bc); err != nil {
		t.Fatal(err)
	}
	if l, _ := bc.GetString(LoadFolder); l != "42" {
		t.Fatalf("LOAD = %q", l)
	}
	if s, _ := bc.GetString(SiteFolder); s != "site-0" {
		t.Fatalf("SITE = %q", s)
	}
}

func TestMonitorReportTo(t *testing.T) {
	sys := testSystem(t, 2)
	b := Install(sys.SiteAt(0))
	b.Register("svc", "site-1", "a", 1)
	m := NewMonitor(sys.SiteAt(1))
	m.LoadFn = func() int64 { return 7 }
	if err := m.ReportTo(context.Background(), "site-0"); err != nil {
		t.Fatal(err)
	}
	rows := b.Table()
	if len(rows) != 1 || !strings.Contains(rows[0], "|7|") {
		t.Fatalf("table = %v", rows)
	}
}

func TestMonitorPump(t *testing.T) {
	sys := testSystem(t, 2)
	b := Install(sys.SiteAt(0))
	b.Register("svc", "site-1", "a", 1)
	m := NewMonitor(sys.SiteAt(1))
	ctx, cancel := context.WithCancel(context.Background())
	m.Pump(ctx, "site-0", 5*time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		rows := b.Table()
		if len(rows) == 1 && !strings.HasSuffix(rows[0], "|0") {
			break // at least one report landed (seq > 0)
		}
		select {
		case <-deadline:
			t.Fatalf("no report arrived: %v", rows)
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	sys.Wait()
}

func TestTicketIssuePunch(t *testing.T) {
	o := NewTicketOffice()
	tk, err := o.Issue("svc", 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Remaining(tk) != 2 {
		t.Fatalf("remaining = %d", o.Remaining(tk))
	}
	if err := o.Punch(tk); err != nil {
		t.Fatal(err)
	}
	if err := o.Punch(tk); err != nil {
		t.Fatal(err)
	}
	if err := o.Punch(tk); !errors.Is(err, ErrTicketSpent) {
		t.Fatalf("third punch = %v", err)
	}
}

func TestTicketForgery(t *testing.T) {
	o := NewTicketOffice()
	tk, _ := o.Issue("svc", 1)
	forged := tk
	forged.Uses = 1000 // inflate allowance
	forged2, _ := DecodeTicket(forged.Encode())
	if err := o.Punch(forged2); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("forged ticket punched: %v", err)
	}
	// A ticket from a different office is rejected too.
	other := NewTicketOffice()
	alien, _ := other.Issue("svc", 1)
	if err := o.Punch(alien); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("alien ticket punched: %v", err)
	}
}

func TestTicketEncodeDecode(t *testing.T) {
	o := NewTicketOffice()
	tk, _ := o.Issue("weather", 5)
	back, err := DecodeTicket(tk.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != tk {
		t.Fatalf("round trip: %+v vs %+v", back, tk)
	}
	if _, err := DecodeTicket("junk"); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("junk decoded: %v", err)
	}
	if _, err := DecodeTicket("a|b|notanumber|sig"); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("bad uses decoded: %v", err)
	}
}

func TestTicketAgent(t *testing.T) {
	sys := testSystem(t, 1)
	site := sys.SiteAt(0)
	InstallTicketAgent(site)

	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "issue")
	bc.PutString(ServiceFolder, "svc")
	bc.PutString(UsesFolder, "1")
	if err := site.MeetClient(context.Background(), AgTicket, bc); err != nil {
		t.Fatal(err)
	}
	raw, _ := bc.GetString(TicketFolder)
	if raw == "" {
		t.Fatal("no ticket issued")
	}

	punch := func() error {
		p := folder.NewBriefcase()
		p.PutString(OpFolder, "punch")
		p.PutString(TicketFolder, raw)
		return site.MeetClient(context.Background(), AgTicket, p)
	}
	if err := punch(); err != nil {
		t.Fatal(err)
	}
	if err := punch(); err == nil {
		t.Fatal("overused ticket accepted")
	}
}

func TestTicketIssueInvalidUses(t *testing.T) {
	o := NewTicketOffice()
	if _, err := o.Issue("svc", 0); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndScheduling(t *testing.T) {
	// Full loop: providers register, monitors report, a client asks the
	// broker for placement and runs a job on the chosen provider.
	sys := testSystem(t, 4) // site-0 broker, sites 1-3 providers
	b := Install(sys.SiteAt(0))
	for i := 1; i <= 3; i++ {
		site := sys.SiteAt(i)
		site.Register("worker", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			mc.Site.Cabinet().AppendString("JOBS", "done")
			return nil
		}))
		b.Register("compute", string(site.ID()), "worker", 1)
		NewMonitor(site)
	}
	for j := 0; j < 9; j++ {
		site, agent, err := b.Place("compute")
		if err != nil {
			t.Fatal(err)
		}
		bc := folder.NewBriefcase()
		if err := sys.SiteAt(0).RemoteMeet(context.Background(), vnetSiteID(site), agent, bc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		if n := sys.SiteAt(i).Cabinet().FolderLen("JOBS"); n != 3 {
			t.Fatalf("site %d ran %d jobs, want 3 (balanced)", i, n)
		}
	}
}

func vnetSiteID(s string) vnet.SiteID { return vnet.SiteID(s) }

func TestGossipConvergence(t *testing.T) {
	// N brokers each knowing one provider converge to identical tables
	// after a logarithmic number of pairwise anti-entropy rounds.
	const n = 8
	brokers := make([]*Broker, n)
	for i := range brokers {
		brokers[i] = NewBroker()
		brokers[i].Register("svc", strings.Repeat("s", i+1), "a", 1)
	}
	// Ring gossip: 3 sweeps suffice for n=8.
	for round := 0; round < 3; round++ {
		for i := range brokers {
			j := (i + 1) % n
			if err := brokers[j].MergeTable(brokers[i].Table()); err != nil {
				t.Fatal(err)
			}
			if err := brokers[i].MergeTable(brokers[j].Table()); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := strings.Join(brokers[0].Table(), "\n")
	for i, b := range brokers {
		if got := strings.Join(b.Table(), "\n"); got != want {
			t.Fatalf("broker %d diverged:\n%s\nvs\n%s", i, got, want)
		}
		if len(b.Lookup("svc")) != n {
			t.Fatalf("broker %d sees %d providers", i, len(b.Lookup("svc")))
		}
	}
}

func TestGossipIdempotent(t *testing.T) {
	b := NewBroker()
	b.Register("svc", "s1", "a", 2)
	b.Report("s1", 3, 7)
	before := strings.Join(b.Table(), "\n")
	for i := 0; i < 5; i++ {
		if err := b.MergeTable(b.Table()); err != nil {
			t.Fatal(err)
		}
	}
	if after := strings.Join(b.Table(), "\n"); after != before {
		t.Fatalf("self-merge changed the table:\n%s\nvs\n%s", after, before)
	}
}
