package broker

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mesh"
)

// The mesh feeds membership and load transitions straight into the broker;
// if the broker stops satisfying mesh.LoadSink this fails to compile.
var _ mesh.LoadSink = (*Broker)(nil)

// TestBrokerConcurrentStress exercises every mutating entry point at once —
// Register, Report, Place, MergeTable, Drop, Lookup, Table — the way a live
// mesh drives a broker: gossip merges racing monitor reports racing placement
// requests. Run under -race it pins that the single-mutex design actually
// covers every path; without -race it still checks the database stays
// self-consistent (Place never returns a dropped or unknown provider).
func TestBrokerConcurrentStress(t *testing.T) {
	b := NewBroker()
	const sites = 8
	const rounds = 200
	for s := 0; s < sites; s++ {
		b.Register("svc", fmt.Sprintf("site-%d", s), "p", 2)
	}

	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				fn(i)
			}
		}()
	}

	worker(func(i int) { // churn registrations
		b.Register("svc", fmt.Sprintf("site-%d", i%sites), "p", int64(1+i%3))
	})
	worker(func(i int) { // monitor reports, monotone seq per site
		b.Report(fmt.Sprintf("site-%d", i%sites), int64(i%7), int64(i))
	})
	worker(func(i int) { // gossip in a remote table
		row := fmt.Sprintf("svc|site-%d|p|2|%d|%d", i%sites, i%5, i)
		if err := b.MergeTable([]string{row}); err != nil {
			t.Errorf("MergeTable: %v", err)
		}
	})
	worker(func(i int) { // mesh death verdicts; sites re-register above
		b.Drop(fmt.Sprintf("site-%d", i%sites))
	})
	worker(func(i int) { // readers
		b.Lookup("svc")
		b.Table()
	})
	worker(func(i int) { // placement under churn
		site, agent, err := b.Place("svc")
		if err != nil {
			// Legal: a Drop burst can momentarily empty the service.
			return
		}
		if !strings.HasPrefix(site, "site-") || agent != "p" {
			t.Errorf("Place returned unknown provider %s/%s", site, agent)
		}
	})
	wg.Wait()

	// The database must still be coherent: every surviving row placeable.
	if _, _, err := b.Place("svc"); err != nil {
		// All rows dropped in the final instant is fine too — re-register
		// and the broker must recover.
		b.Register("svc", "site-0", "p", 1)
		if _, _, err := b.Place("svc"); err != nil {
			t.Fatalf("broker unplaceable after stress: %v", err)
		}
	}
}

// TestStaleReportNeverMovesPlacement pins the freshness invariant end to
// end: once the broker has seen load seq N for a site, a report or gossiped
// row with seq ≤ N must not change placement. Without the seq guard a
// delayed "site-b is idle" report arriving after "site-b is swamped" would
// bounce new work onto the swamped site.
func TestStaleReportNeverMovesPlacement(t *testing.T) {
	b := NewBroker()
	b.Register("svc", "site-a", "p", 1)
	b.Register("svc", "site-b", "p", 1)

	b.Report("site-a", 1, 10)
	b.Report("site-b", 50, 10) // fresh: b is swamped

	site, _, err := b.Place("svc")
	if err != nil || site != "site-a" {
		t.Fatalf("Place = %s, %v; want site-a", site, err)
	}

	// A stale direct report claiming b is idle must be ignored: placement
	// keeps avoiding b even though site-a now carries an in-flight unit.
	b.Report("site-b", 0, 9)
	if site, _, err := b.Place("svc"); err != nil || site != "site-a" {
		t.Fatalf("stale report moved placement: Place = %s, %v; want site-a", site, err)
	}
	for _, row := range b.Table() {
		if strings.HasPrefix(row, "svc|site-b|") && row != "svc|site-b|p|1|50|10" {
			t.Fatalf("stale Report rewrote the row: %q", row)
		}
	}

	// A stale gossiped row must be ignored the same way.
	if err := b.MergeTable([]string{"svc|site-b|p|1|0|8"}); err != nil {
		t.Fatal(err)
	}
	for _, row := range b.Table() {
		if strings.HasPrefix(row, "svc|site-b|") && row != "svc|site-b|p|1|50|10" {
			t.Fatalf("stale gossip rewrote the row: %q", row)
		}
	}

	// An equal-seq replay (duplicate delivery) must be ignored too.
	b.Report("site-b", 0, 10)
	if err := b.MergeTable([]string{"svc|site-b|p|1|0|10"}); err != nil {
		t.Fatal(err)
	}
	for _, row := range b.Table() {
		if strings.HasPrefix(row, "svc|site-b|") && row != "svc|site-b|p|1|50|10" {
			t.Fatalf("equal-seq replay rewrote the row: %q", row)
		}
	}

	// A genuinely fresher report does move placement: b drains, a stays put.
	b.Report("site-a", 50, 11)
	b.Report("site-b", 0, 11)
	if site, _, err := b.Place("svc"); err != nil || site != "site-b" {
		t.Fatalf("fresh report: Place = %s, %v; want site-b", site, err)
	}
}
