package broker

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// Monitor is the per-site status agent: it observes its site's load and
// reports it to brokers, either on demand (meet it) or periodically via a
// background pump. Reports carry a monotonically increasing sequence
// number so brokers keep only the freshest value regardless of delivery
// order.
type Monitor struct {
	site *core.Site
	seq  atomic.Int64
	// LoadFn computes the reported load; defaults to the site's running
	// meet count. Experiments override it to model queue lengths.
	LoadFn func() int64
}

// NewMonitor creates a monitor bound to a site and registers it as the
// AgMonitor agent there.
func NewMonitor(site *core.Site) *Monitor {
	m := &Monitor{site: site}
	m.LoadFn = func() int64 { return site.Load() }
	site.Register(AgMonitor, core.AgentFunc(m.meet))
	return m
}

// meet serves an on-demand status query: it fills LOAD and SEQ.
func (m *Monitor) meet(mc *core.MeetContext, bc *folder.Briefcase) error {
	bc.PutString(LoadFolder, strconv.FormatInt(m.LoadFn(), 10))
	bc.PutString(SeqFolder, strconv.FormatInt(m.seq.Add(1), 10))
	bc.PutString(SiteFolder, string(m.site.ID()))
	return nil
}

// ReportTo pushes one load report to the broker agent at brokerSite. The
// report travels like any other agent interaction: a remote meet with the
// broker.
func (m *Monitor) ReportTo(ctx context.Context, brokerSite vnet.SiteID) error {
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "report")
	bc.PutString(SiteFolder, string(m.site.ID()))
	bc.PutString(LoadFolder, strconv.FormatInt(m.LoadFn(), 10))
	bc.PutString(SeqFolder, strconv.FormatInt(m.seq.Add(1), 10))
	if err := m.site.RemoteMeet(ctx, brokerSite, AgBroker, bc); err != nil {
		return fmt.Errorf("monitor %s: %w", m.site.ID(), err)
	}
	return nil
}

// Pump reports to the broker every period until ctx is cancelled. Failures
// are tolerated: a monitor must outlive transient broker unreachability.
func (m *Monitor) Pump(ctx context.Context, brokerSite vnet.SiteID, period time.Duration) {
	m.site.Go(func() {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				_ = m.ReportTo(ctx, brokerSite)
			}
		}
	})
}
