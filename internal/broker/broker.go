// Package broker implements TACOMA's scheduling service (section 4 of the
// paper). Scheduling matches the needs of autonomous agents with the
// providers of services while respecting constraints imposed by autonomous
// site administrators.
//
// It follows the paper's four-agent structure:
//
//   - the broker agent keeps a database of service providers and acts as a
//     matchmaker, distributing requests by load and capacity;
//   - a monitor agent at each provider site reports the site's status to
//     the brokers;
//   - the courier agent (from package core) carries those reports;
//   - a ticket agent issues tickets that gate access to a service.
//
// Brokers also protect agents whose names must stay secret: the broker
// queues meeting requests — an agent plus its briefcase, stored inside an
// ordinary folder, possible only because folders are uninterpreted and
// typeless — and the protected agent drains its queue through the broker.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// Agent and folder names of the scheduling subsystem.
const (
	// AgBroker is the well-known matchmaker agent.
	AgBroker = "broker"
	// AgMonitor is the per-site status reporter.
	AgMonitor = "monitor"
	// AgTicket issues service tickets.
	AgTicket = "ticket"

	// OpFolder selects the broker operation: register, lookup, report,
	// place, gossip, protect, request, drain.
	OpFolder = "OP"
	// ServiceFolder names a service.
	ServiceFolder = "SERVICE"
	// ProviderFolder names a provider agent.
	ProviderFolder = "PROVIDER"
	// SiteFolder names a provider's site.
	SiteFolder = "SITE"
	// CapacityFolder carries a provider's capacity (integer ≥ 1).
	CapacityFolder = "CAPACITY"
	// LoadFolder carries a load report value.
	LoadFolder = "LOAD"
	// SeqFolder carries a report sequence number (freshness).
	SeqFolder = "SEQ"
	// ProvidersFolder returns matchmaking results.
	ProvidersFolder = "PROVIDERS"
	// ChosenFolder returns the placement decision.
	ChosenFolder = "CHOSEN"
	// TableFolder carries a gossiped provider table.
	TableFolder = "TABLE"
)

// Broker errors.
var (
	// ErrNoProvider is returned when no provider serves a service.
	ErrNoProvider = errors.New("broker: no provider for service")
	// ErrBadRequest is returned for malformed broker requests.
	ErrBadRequest = errors.New("broker: bad request")
)

// provider is one row of a broker's service database.
type provider struct {
	Service  string
	Site     string
	Agent    string
	Capacity int64
	Load     int64 // last reported load
	Seq      int64 // freshness of the report
	InFlight int64 // optimistic count of placements since the last report
}

// key identifies a provider row.
func (p *provider) key() string { return p.Service + "@" + p.Site + "/" + p.Agent }

// effectiveLoad is the broker's placement metric: reported load plus
// optimistic in-flight placements, normalized by capacity.
func (p *provider) effectiveLoad() float64 {
	return float64(p.Load+p.InFlight) / float64(p.Capacity)
}

// Broker is the matchmaker state behind the broker agent. One Broker may
// serve several sites' agents; brokers gossip tables among themselves so
// requests can be distributed on load and capacity, a problem the paper
// compares to wide-area routing.
type Broker struct {
	mu        sync.Mutex
	providers map[string]*provider
	protected map[string]string // alias -> real (secret) agent name
	queues    map[string][]string
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{
		providers: make(map[string]*provider),
		protected: make(map[string]string),
		queues:    make(map[string][]string),
	}
}

// Register adds or updates a provider row.
func (b *Broker) Register(service, site, agent string, capacity int64) {
	if capacity < 1 {
		capacity = 1
	}
	p := &provider{Service: service, Site: site, Agent: agent, Capacity: capacity}
	b.mu.Lock()
	if old, ok := b.providers[p.key()]; ok {
		p.Load, p.Seq, p.InFlight = old.Load, old.Seq, old.InFlight
	}
	b.providers[p.key()] = p
	b.mu.Unlock()
}

// Drop removes every provider row at a site — the matchmaker's reaction to
// a mesh death verdict or a graceful leave. A site that comes back
// re-registers (the mesh feeds Register on the alive transition), starting
// with a clean row.
func (b *Broker) Drop(site string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, p := range b.providers {
		if p.Site == site {
			delete(b.providers, k)
		}
	}
}

// Report records a load report for every provider at the given site if the
// sequence number is fresher than what the broker has.
func (b *Broker) Report(site string, load, seq int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range b.providers {
		if p.Site != site {
			continue
		}
		if seq > p.Seq {
			p.Load, p.Seq, p.InFlight = load, seq, 0
		}
	}
}

// Lookup returns the providers of a service sorted by effective load.
func (b *Broker) Lookup(service string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var rows []*provider
	for _, p := range b.providers {
		if p.Service == service {
			rows = append(rows, p)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		li, lj := rows[i].effectiveLoad(), rows[j].effectiveLoad()
		if li != lj {
			return li < lj
		}
		return rows[i].key() < rows[j].key()
	})
	out := make([]string, len(rows))
	for i, p := range rows {
		out[i] = p.Site + "/" + p.Agent
	}
	return out
}

// Place picks the least-loaded provider for a service and charges one
// optimistic in-flight unit to it, so bursts between monitor reports still
// spread across providers.
func (b *Broker) Place(service string) (site, agent string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var best *provider
	for _, p := range b.providers {
		if p.Service != service {
			continue
		}
		if best == nil || p.effectiveLoad() < best.effectiveLoad() ||
			(p.effectiveLoad() == best.effectiveLoad() && p.key() < best.key()) {
			best = p
		}
	}
	if best == nil {
		return "", "", fmt.Errorf("%w: %q", ErrNoProvider, service)
	}
	best.InFlight++
	return best.Site, best.Agent, nil
}

// Table serializes the provider database for gossip: one row per element.
func (b *Broker) Table() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	rows := make([]string, 0, len(b.providers))
	for _, p := range b.providers {
		rows = append(rows, strings.Join([]string{
			p.Service, p.Site, p.Agent,
			strconv.FormatInt(p.Capacity, 10),
			strconv.FormatInt(p.Load, 10),
			strconv.FormatInt(p.Seq, 10),
		}, "|"))
	}
	sort.Strings(rows)
	return rows
}

// MergeTable folds a gossiped table into the database, keeping the fresher
// report per provider — the anti-entropy step of the routing-like load
// dissemination the paper sketches.
func (b *Broker) MergeTable(rows []string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, row := range rows {
		parts := strings.Split(row, "|")
		if len(parts) != 6 {
			return fmt.Errorf("%w: gossip row %q", ErrBadRequest, row)
		}
		capacity, err1 := strconv.ParseInt(parts[3], 10, 64)
		load, err2 := strconv.ParseInt(parts[4], 10, 64)
		seq, err3 := strconv.ParseInt(parts[5], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("%w: gossip row %q", ErrBadRequest, row)
		}
		if capacity < 1 {
			// A zero or negative gossiped capacity would make effectiveLoad
			// divide by zero (or invert the ordering); clamp like Register
			// does rather than poison placement.
			capacity = 1
		}
		in := &provider{
			Service: parts[0], Site: parts[1], Agent: parts[2],
			Capacity: capacity, Load: load, Seq: seq,
		}
		if old, ok := b.providers[in.key()]; !ok || in.Seq > old.Seq {
			b.providers[in.key()] = in
		}
	}
	return nil
}

// Protect hides a real agent name behind an alias; only the broker can
// reach the protected agent afterwards.
func (b *Broker) Protect(alias, real string) {
	b.mu.Lock()
	b.protected[alias] = real
	b.mu.Unlock()
}

// enqueue stores a meeting request for a protected alias. The element is an
// encoded briefcase: agents and folders nest freely.
func (b *Broker) enqueue(alias string, request string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.protected[alias]; !ok {
		return fmt.Errorf("%w: unknown protected alias %q", ErrBadRequest, alias)
	}
	b.queues[alias] = append(b.queues[alias], request)
	return nil
}

// drain removes and returns all queued requests for an alias, but only when
// the caller presents the real name — the shared secret between broker and
// protected agent.
func (b *Broker) drain(alias, real string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.protected[alias] != real {
		return nil, fmt.Errorf("%w: not the protected agent for %q", ErrBadRequest, alias)
	}
	q := b.queues[alias]
	b.queues[alias] = nil
	return q, nil
}

// Agent wraps the broker state as a meetable TACOMA agent. Operations are
// selected by the OP folder:
//
//	register: SERVICE, SITE, PROVIDER, CAPACITY
//	report:   SITE, LOAD, SEQ
//	lookup:   SERVICE -> PROVIDERS (site/agent, best first)
//	place:    SERVICE -> CHOSEN ("site agent")
//	gossip:   TABLE (rows in, merged; own table returned in TABLE)
//	protect:  SERVICE (alias), PROVIDER (real name)
//	request:  SERVICE (alias), REQUEST (encoded briefcase element)
//	drain:    SERVICE (alias), PROVIDER (real name) -> REQUESTS
type Agent struct{ B *Broker }

// RequestFolder and RequestsFolder carry protected-meeting payloads.
const (
	RequestFolder  = "REQUEST"
	RequestsFolder = "REQUESTS"
)

// Meet implements core.Agent.
func (a *Agent) Meet(mc *core.MeetContext, bc *folder.Briefcase) error {
	op, err := bc.GetString(OpFolder)
	if err != nil {
		return fmt.Errorf("%w: missing OP", ErrBadRequest)
	}
	switch op {
	case "register":
		service, site, agent, err := a.serviceSiteAgent(bc)
		if err != nil {
			return err
		}
		capacity := int64(1)
		if c, err := bc.GetString(CapacityFolder); err == nil {
			capacity, err = strconv.ParseInt(c, 10, 64)
			if err != nil {
				return fmt.Errorf("%w: capacity %q", ErrBadRequest, c)
			}
		}
		a.B.Register(service, site, agent, capacity)
		return nil
	case "report":
		site, err := bc.GetString(SiteFolder)
		if err != nil {
			return fmt.Errorf("%w: missing SITE", ErrBadRequest)
		}
		load, err1 := strconv.ParseInt(first(bc, LoadFolder), 10, 64)
		seq, err2 := strconv.ParseInt(first(bc, SeqFolder), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%w: bad LOAD/SEQ", ErrBadRequest)
		}
		a.B.Report(site, load, seq)
		return nil
	case "lookup":
		service, err := bc.GetString(ServiceFolder)
		if err != nil {
			return fmt.Errorf("%w: missing SERVICE", ErrBadRequest)
		}
		bc.Put(ProvidersFolder, folder.OfStrings(a.B.Lookup(service)...))
		return nil
	case "place":
		service, err := bc.GetString(ServiceFolder)
		if err != nil {
			return fmt.Errorf("%w: missing SERVICE", ErrBadRequest)
		}
		site, agent, err := a.B.Place(service)
		if err != nil {
			return err
		}
		bc.Put(ChosenFolder, folder.OfStrings(site, agent))
		return nil
	case "gossip":
		var incoming []string
		if tf, err := bc.Folder(TableFolder); err == nil {
			incoming = tf.Strings()
		}
		if err := a.B.MergeTable(incoming); err != nil {
			return err
		}
		bc.Put(TableFolder, folder.OfStrings(a.B.Table()...))
		return nil
	case "protect":
		alias, err := bc.GetString(ServiceFolder)
		if err != nil {
			return fmt.Errorf("%w: missing SERVICE alias", ErrBadRequest)
		}
		real, err := bc.GetString(ProviderFolder)
		if err != nil {
			return fmt.Errorf("%w: missing PROVIDER", ErrBadRequest)
		}
		a.B.Protect(alias, real)
		return nil
	case "request":
		alias, err := bc.GetString(ServiceFolder)
		if err != nil {
			return fmt.Errorf("%w: missing SERVICE alias", ErrBadRequest)
		}
		rf, err := bc.Folder(RequestFolder)
		if err != nil {
			return fmt.Errorf("%w: missing REQUEST", ErrBadRequest)
		}
		raw, err := rf.StringAt(0)
		if err != nil {
			return fmt.Errorf("%w: empty REQUEST", ErrBadRequest)
		}
		return a.B.enqueue(alias, raw)
	case "drain":
		alias, err := bc.GetString(ServiceFolder)
		if err != nil {
			return fmt.Errorf("%w: missing SERVICE alias", ErrBadRequest)
		}
		real, err := bc.GetString(ProviderFolder)
		if err != nil {
			return fmt.Errorf("%w: missing PROVIDER", ErrBadRequest)
		}
		reqs, err := a.B.drain(alias, real)
		if err != nil {
			return err
		}
		bc.Put(RequestsFolder, folder.OfStrings(reqs...))
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadRequest, op)
	}
}

func (a *Agent) serviceSiteAgent(bc *folder.Briefcase) (service, site, agent string, err error) {
	if service, err = bc.GetString(ServiceFolder); err != nil {
		return "", "", "", fmt.Errorf("%w: missing SERVICE", ErrBadRequest)
	}
	if site, err = bc.GetString(SiteFolder); err != nil {
		return "", "", "", fmt.Errorf("%w: missing SITE", ErrBadRequest)
	}
	if agent, err = bc.GetString(ProviderFolder); err != nil {
		return "", "", "", fmt.Errorf("%w: missing PROVIDER", ErrBadRequest)
	}
	return service, site, agent, nil
}

func first(bc *folder.Briefcase, name string) string {
	s, _ := bc.GetString(name)
	return s
}

// Install registers a broker agent at a site and returns its state.
func Install(site *core.Site) *Broker {
	b := NewBroker()
	site.Register(AgBroker, &Agent{B: b})
	return b
}

// SiteAgent is the vnet.SiteID + agent pair produced by placement.
type SiteAgent struct {
	Site  vnet.SiteID
	Agent string
}
