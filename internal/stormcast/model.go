// Package stormcast reimplements the paper's first evaluation application:
// StormCast, "a set of expert systems to predict severe storms in the
// Arctic based on weather data obtained from a distributed network of
// sensors" [J93]. The original used real Arctic sensor feeds; this
// reproduction substitutes a synthetic weather model — a parameterised
// storm front sweeping across a sensor grid — which exercises the same
// code path the paper's bandwidth argument depends on: prediction agents
// visit sensor sites, reduce raw observations to summaries locally, and
// carry only the relevant information across the network.
package stormcast

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Observation is one sensor reading.
type Observation struct {
	Site     string
	X, Y     int
	T        int     // timestep
	Pressure float64 // hPa
	Wind     float64 // m/s
	Temp     float64 // °C
}

// Encode renders the observation as a folder element (fixed field order).
func (o Observation) Encode() string {
	return strings.Join([]string{
		o.Site,
		strconv.Itoa(o.X), strconv.Itoa(o.Y), strconv.Itoa(o.T),
		strconv.FormatFloat(o.Pressure, 'f', 2, 64),
		strconv.FormatFloat(o.Wind, 'f', 2, 64),
		strconv.FormatFloat(o.Temp, 'f', 2, 64),
	}, ",")
}

// ParseObservation decodes a folder element.
func ParseObservation(s string) (Observation, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 7 {
		return Observation{}, fmt.Errorf("stormcast: malformed observation %q", s)
	}
	var o Observation
	var err error
	o.Site = parts[0]
	if o.X, err = strconv.Atoi(parts[1]); err != nil {
		return Observation{}, fmt.Errorf("stormcast: bad X in %q", s)
	}
	if o.Y, err = strconv.Atoi(parts[2]); err != nil {
		return Observation{}, fmt.Errorf("stormcast: bad Y in %q", s)
	}
	if o.T, err = strconv.Atoi(parts[3]); err != nil {
		return Observation{}, fmt.Errorf("stormcast: bad T in %q", s)
	}
	if o.Pressure, err = strconv.ParseFloat(parts[4], 64); err != nil {
		return Observation{}, fmt.Errorf("stormcast: bad pressure in %q", s)
	}
	if o.Wind, err = strconv.ParseFloat(parts[5], 64); err != nil {
		return Observation{}, fmt.Errorf("stormcast: bad wind in %q", s)
	}
	if o.Temp, err = strconv.ParseFloat(parts[6], 64); err != nil {
		return Observation{}, fmt.Errorf("stormcast: bad temp in %q", s)
	}
	return o, nil
}

// Model is the synthetic Arctic weather field: a low-pressure storm front
// moving in a straight line across a W×H sensor grid, plus seeded noise.
// All values derive deterministically from (x, y, t, seed), so sites can
// generate their own observations independently and tests are exactly
// reproducible.
type Model struct {
	W, H int
	// Front trajectory: position at time t is (X0+VX*t, Y0+VY*t).
	X0, Y0 float64
	VX, VY float64
	// Radius is the storm's spatial extent (Gaussian sigma, grid units).
	Radius float64
	// Depth is the central pressure drop in hPa.
	Depth float64
	// MaxWind is the peak wind added near the centre, m/s.
	MaxWind float64
	// Seed drives observation noise.
	Seed int64
}

// DefaultModel is the storm used by tests, examples, and experiments: a
// front entering a 4×4 grid from the northwest and crossing it in ~12
// steps.
func DefaultModel(w, h int, seed int64) Model {
	return Model{
		W: w, H: h,
		X0: -2, Y0: -2,
		VX: 0.5, VY: 0.5,
		Radius:  1.8,
		Depth:   45,
		MaxWind: 30,
		Seed:    seed,
	}
}

// front returns the storm centre at time t.
func (m Model) front(t int) (cx, cy float64) {
	return m.X0 + m.VX*float64(t), m.Y0 + m.VY*float64(t)
}

// intensity is the storm's normalized influence at (x,y,t) in (0,1].
func (m Model) intensity(x, y, t int) float64 {
	cx, cy := m.front(t)
	dx, dy := float64(x)-cx, float64(y)-cy
	d2 := dx*dx + dy*dy
	return math.Exp(-d2 / (2 * m.Radius * m.Radius))
}

// Observe generates the sensor reading at grid position (x,y), time t.
func (m Model) Observe(site string, x, y, t int) Observation {
	// Noise is keyed by position and time so repeated calls agree.
	rng := rand.New(rand.NewSource(m.Seed ^ int64(x)<<40 ^ int64(y)<<20 ^ int64(t)))
	inten := m.intensity(x, y, t)
	return Observation{
		Site: site, X: x, Y: y, T: t,
		Pressure: 1013 - m.Depth*inten + rng.NormFloat64()*1.5,
		Wind:     5 + m.MaxWind*inten + math.Abs(rng.NormFloat64())*1.2,
		Temp:     -12 + 4*inten + rng.NormFloat64()*0.8,
	}
}

// StormAt reports ground truth: whether the storm meaningfully affects
// grid cell (x,y) at time t. This is what forecasts are scored against.
func (m Model) StormAt(x, y, t int) bool {
	return m.intensity(x, y, t) > 0.45
}

// StormAnywhere reports whether any grid cell is under the storm at t.
func (m Model) StormAnywhere(t int) bool {
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.StormAt(x, y, t) {
				return true
			}
		}
	}
	return false
}

// StormInWindow reports whether the storm touched the grid at any point in
// the observation window [t-n+1, t]. Forecasts built from window features
// (minimum pressure, maximum wind) are scored against this, since that is
// exactly the period the features describe.
func (m Model) StormInWindow(t, n int) bool {
	for i := t - n + 1; i <= t; i++ {
		if i >= 0 && m.StormAnywhere(i) {
			return true
		}
	}
	return false
}
