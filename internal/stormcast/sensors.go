package stormcast

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/folder"
)

// AgSensor is the per-site sensor agent name.
const AgSensor = "sensor"

// Sensor briefcase protocol folders.
const (
	// OpFolder selects "raw" (full observation window) or "summary"
	// (locally reduced features).
	OpFolder = "OP"
	// WindowFolder carries the requested window length in timesteps.
	WindowFolder = "WINDOW"
	// TimeFolder carries the current timestep.
	TimeFolder = "T"
	// ObsFolder returns raw observations, one element each.
	ObsFolder = "OBS"
	// SummaryFolder returns the local feature summary, one element.
	SummaryFolder = "SUMMARY"
)

// Summary is the locally reduced feature vector an agent carries instead
// of raw data: this is the filtering step that conserves bandwidth.
type Summary struct {
	Site        string
	X, Y        int
	MinPressure float64
	MaxWind     float64
	Falling     bool // pressure falling across the window
}

// Encode renders the summary as a folder element.
func (s Summary) Encode() string {
	falling := "0"
	if s.Falling {
		falling = "1"
	}
	return strings.Join([]string{
		s.Site, strconv.Itoa(s.X), strconv.Itoa(s.Y),
		strconv.FormatFloat(s.MinPressure, 'f', 2, 64),
		strconv.FormatFloat(s.MaxWind, 'f', 2, 64),
		falling,
	}, ",")
}

// ParseSummary decodes a summary element.
func ParseSummary(raw string) (Summary, error) {
	parts := strings.Split(raw, ",")
	if len(parts) != 6 {
		return Summary{}, fmt.Errorf("stormcast: malformed summary %q", raw)
	}
	var s Summary
	var err error
	s.Site = parts[0]
	if s.X, err = strconv.Atoi(parts[1]); err != nil {
		return Summary{}, fmt.Errorf("stormcast: bad X in %q", raw)
	}
	if s.Y, err = strconv.Atoi(parts[2]); err != nil {
		return Summary{}, fmt.Errorf("stormcast: bad Y in %q", raw)
	}
	if s.MinPressure, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return Summary{}, fmt.Errorf("stormcast: bad pressure in %q", raw)
	}
	if s.MaxWind, err = strconv.ParseFloat(parts[4], 64); err != nil {
		return Summary{}, fmt.Errorf("stormcast: bad wind in %q", raw)
	}
	s.Falling = parts[5] == "1"
	return s, nil
}

// Sensor is one grid sensor bound to a site.
type Sensor struct {
	site  *core.Site
	model Model
	x, y  int
}

// InstallSensor registers the sensor agent for grid cell (x,y) at a site.
func InstallSensor(site *core.Site, model Model, x, y int) *Sensor {
	s := &Sensor{site: site, model: model, x: x, y: y}
	site.Register(AgSensor, core.AgentFunc(s.meet))
	return s
}

// window generates the observation window ending at time t.
func (s *Sensor) window(t, n int) []Observation {
	if n < 1 {
		n = 1
	}
	out := make([]Observation, 0, n)
	for i := t - n + 1; i <= t; i++ {
		if i < 0 {
			continue
		}
		out = append(out, s.model.Observe(string(s.site.ID()), s.x, s.y, i))
	}
	return out
}

// Summarize reduces an observation window to its features. Exported so
// the centralized (client-server) forecast can apply the identical
// reduction after pulling raw data: both strategies must produce the same
// forecast for the bandwidth comparison to be fair.
func Summarize(site string, x, y int, window []Observation) Summary {
	s := Summary{Site: site, X: x, Y: y, MinPressure: 1e9, MaxWind: -1}
	for _, o := range window {
		if o.Pressure < s.MinPressure {
			s.MinPressure = o.Pressure
		}
		if o.Wind > s.MaxWind {
			s.MaxWind = o.Wind
		}
	}
	if len(window) >= 2 {
		s.Falling = window[len(window)-1].Pressure < window[0].Pressure
	}
	return s
}

// meet serves sensor queries.
func (s *Sensor) meet(mc *core.MeetContext, bc *folder.Briefcase) error {
	op, err := bc.GetString(OpFolder)
	if err != nil {
		return fmt.Errorf("sensor: missing OP: %w", err)
	}
	tStr, err := bc.GetString(TimeFolder)
	if err != nil {
		return fmt.Errorf("sensor: missing T: %w", err)
	}
	t, err := strconv.Atoi(tStr)
	if err != nil {
		return fmt.Errorf("sensor: bad T %q", tStr)
	}
	n := 6
	if w, err := bc.GetString(WindowFolder); err == nil {
		if v, err := strconv.Atoi(w); err == nil && v > 0 {
			n = v
		}
	}
	window := s.window(t, n)
	switch op {
	case "raw":
		obs := folder.New()
		for _, o := range window {
			obs.PushString(o.Encode())
		}
		bc.Put(ObsFolder, obs)
		return nil
	case "summary":
		sum := Summarize(string(s.site.ID()), s.x, s.y, window)
		bc.Ensure(SummaryFolder).PushString(sum.Encode())
		return nil
	default:
		return fmt.Errorf("sensor: unknown op %q", op)
	}
}
