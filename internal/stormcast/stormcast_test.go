package stormcast

import (
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
)

func testField(t *testing.T, w, h int) *Field {
	t.Helper()
	f := NewField(w, h, 7, core.SystemConfig{CallTimeout: 50 * time.Millisecond})
	t.Cleanup(f.Sys.Wait)
	return f
}

func TestObservationEncodeDecode(t *testing.T) {
	m := DefaultModel(4, 4, 1)
	o := m.Observe("site-3", 2, 1, 5)
	back, err := ParseObservation(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// Encoding rounds floats to 2 decimals, so compare re-encoded forms:
	// encode∘parse must be idempotent.
	if back.Encode() != o.Encode() {
		t.Fatalf("round trip: %q vs %q", back.Encode(), o.Encode())
	}
	for _, bad := range []string{"", "a,b", "s,x,1,1,1,1,1", "s,1,y,1,1,1,1", "s,1,1,t,1,1,1", "s,1,1,1,p,1,1", "s,1,1,1,1,w,1", "s,1,1,1,1,1,T"} {
		if _, err := ParseObservation(bad); err == nil {
			t.Errorf("ParseObservation(%q) succeeded", bad)
		}
	}
}

func TestSummaryEncodeDecode(t *testing.T) {
	s := Summary{Site: "site-1", X: 2, Y: 3, MinPressure: 985.25, MaxWind: 31.5, Falling: true}
	back, err := ParseSummary(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: %+v vs %+v", back, s)
	}
	for _, bad := range []string{"", "a,b,c", "s,x,1,1,1,0", "s,1,1,p,1,0"} {
		if _, err := ParseSummary(bad); err == nil {
			t.Errorf("ParseSummary(%q) succeeded", bad)
		}
	}
}

func TestModelDeterministic(t *testing.T) {
	m := DefaultModel(4, 4, 42)
	a := m.Observe("s", 1, 1, 3)
	b := m.Observe("s", 1, 1, 3)
	if a != b {
		t.Fatal("model not deterministic")
	}
	other := DefaultModel(4, 4, 43)
	if m.Observe("s", 1, 1, 3) == other.Observe("s", 1, 1, 3) {
		t.Fatal("seed has no effect")
	}
}

func TestStormSweepsAcrossGrid(t *testing.T) {
	m := DefaultModel(4, 4, 1)
	// Before arrival and long after departure there is no storm; during
	// the crossing there is.
	if m.StormAnywhere(0) {
		t.Fatal("storm present at t=0")
	}
	mid := false
	for tt := 4; tt <= 12; tt++ {
		if m.StormAnywhere(tt) {
			mid = true
		}
	}
	if !mid {
		t.Fatal("storm never crossed the grid")
	}
	if m.StormAnywhere(40) {
		t.Fatal("storm never left")
	}
}

func TestStormSignatureInObservations(t *testing.T) {
	m := DefaultModel(4, 4, 1)
	calm := m.Observe("s", 0, 0, 0)
	// t=8: front at (2,2); cell (2,2) is in the storm.
	stormy := m.Observe("s", 2, 2, 8)
	if !(stormy.Pressure < calm.Pressure-20) {
		t.Fatalf("no pressure drop: calm=%.1f stormy=%.1f", calm.Pressure, stormy.Pressure)
	}
	if !(stormy.Wind > calm.Wind+10) {
		t.Fatalf("no wind rise: calm=%.1f stormy=%.1f", calm.Wind, stormy.Wind)
	}
}

func TestSensorAgentRaw(t *testing.T) {
	f := testField(t, 2, 2)
	bc := coreBC("raw", 5, 3)
	if err := f.Home.RemoteMeet(context.Background(), f.Sites[0], AgSensor, bc); err != nil {
		t.Fatal(err)
	}
	obs, err := bc.Folder(ObsFolder)
	if err != nil || obs.Len() != 3 {
		t.Fatalf("OBS = %v, %v", obs, err)
	}
	o, err := ParseObservation(obs.Strings()[0])
	if err != nil {
		t.Fatal(err)
	}
	if o.T != 3 { // window [3,5] starts at t-n+1
		t.Fatalf("first obs T = %d", o.T)
	}
}

func TestSensorAgentSummary(t *testing.T) {
	f := testField(t, 2, 2)
	bc := coreBC("summary", 8, 6)
	if err := f.Home.RemoteMeet(context.Background(), f.Sites[3], AgSensor, bc); err != nil {
		t.Fatal(err)
	}
	sf, err := bc.Folder(SummaryFolder)
	if err != nil || sf.Len() != 1 {
		t.Fatalf("SUMMARY = %v, %v", sf, err)
	}
	if _, err := ParseSummary(sf.Strings()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSensorAgentErrors(t *testing.T) {
	f := testField(t, 2, 2)
	cases := []func() error{
		func() error { // missing OP
			bc := coreBC("", 1, 1)
			bc.Delete(OpFolder)
			return f.Home.RemoteMeet(context.Background(), f.Sites[0], AgSensor, bc)
		},
		func() error { // missing T
			bc := coreBC("raw", 1, 1)
			bc.Delete(TimeFolder)
			return f.Home.RemoteMeet(context.Background(), f.Sites[0], AgSensor, bc)
		},
		func() error { // bad op
			bc := coreBC("explode", 1, 1)
			return f.Home.RemoteMeet(context.Background(), f.Sites[0], AgSensor, bc)
		},
	}
	for i, c := range cases {
		if err := c(); err == nil {
			t.Errorf("case %d succeeded", i)
		}
	}
}

func TestRoamingEqualsCentralForecast(t *testing.T) {
	f := testField(t, 3, 3)
	expert := DefaultExpert()
	for tt := 0; tt <= 14; tt += 2 {
		r, err := RoamingForecast(context.Background(), f.Home, f.Sites, tt, 6, expert)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CentralForecast(context.Background(), f.Home, f.Sites, tt, 6, expert)
		if err != nil {
			t.Fatal(err)
		}
		if r.Storm != c.Storm {
			t.Fatalf("t=%d: roaming=%v central=%v", tt, r.Storm, c.Storm)
		}
		if len(r.Stormy) != len(c.Stormy) {
			t.Fatalf("t=%d: stormy sets differ: %v vs %v", tt, r.Stormy, c.Stormy)
		}
	}
}

func TestRoamingForecastMovesFewerBytes(t *testing.T) {
	// With a realistic observation window (here ~100 readings per site)
	// the raw data dwarfs the roaming briefcase and filtering at the data
	// site wins. (At tiny windows the crossover flips — see the E9
	// experiment, which sweeps the window size.)
	f := testField(t, 3, 3)
	expert := DefaultExpert()
	ctx := context.Background()
	const window = 100

	f.Sys.Net.ResetStats()
	if _, err := RoamingForecast(ctx, f.Home, f.Sites, 110, window, expert); err != nil {
		t.Fatal(err)
	}
	roamBytes := f.Sys.Net.Stats().BytesTotal

	f.Sys.Net.ResetStats()
	if _, err := CentralForecast(ctx, f.Home, f.Sites, 110, window, expert); err != nil {
		t.Fatal(err)
	}
	centralBytes := f.Sys.Net.Stats().BytesTotal

	if roamBytes >= centralBytes/2 {
		t.Fatalf("agent used %d bytes, client-server %d — filtering at the data site should win clearly",
			roamBytes, centralBytes)
	}
}

func TestForecastDetectsStorm(t *testing.T) {
	f := testField(t, 4, 4)
	expert := DefaultExpert()
	// t=8: front at (2,2), well inside the 4x4 grid.
	fc, err := RoamingForecast(context.Background(), f.Home, f.Sites, 8, 6, expert)
	if err != nil {
		t.Fatal(err)
	}
	if !fc.Storm {
		t.Fatalf("storm at t=8 not detected: %+v", fc)
	}
	// t=0: front far outside.
	fc0, err := RoamingForecast(context.Background(), f.Home, f.Sites, 0, 6, expert)
	if err != nil {
		t.Fatal(err)
	}
	if fc0.Storm {
		t.Fatalf("false alarm at t=0: %+v", fc0)
	}
}

func TestAccuracy(t *testing.T) {
	f := testField(t, 4, 4)
	acc, err := f.Accuracy(context.Background(), 0, 20, 6, DefaultExpert(), RoamingForecast)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("accuracy = %.2f, want >= 0.80", acc)
	}
	if _, err := f.Accuracy(context.Background(), 5, 5, 6, DefaultExpert(), RoamingForecast); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestExpertQuorum(t *testing.T) {
	e := Expert{PressureThreshold: 990, WindThreshold: 25, Quorum: 2}
	mk := func(p, w float64, falling bool) Summary {
		return Summary{MinPressure: p, MaxWind: w, Falling: falling}
	}
	// One stormy site: below quorum.
	fc := e.Predict(0, []Summary{mk(980, 30, true), mk(1010, 5, false)})
	if fc.Storm {
		t.Fatal("quorum of 1 satisfied quorum of 2")
	}
	// Two stormy sites: storm.
	fc = e.Predict(0, []Summary{mk(980, 30, true), mk(985, 10, true), mk(1010, 5, false)})
	if !fc.Storm || len(fc.Stormy) != 2 {
		t.Fatalf("forecast = %+v", fc)
	}
	// Low pressure but rising does not count; high wind alone does.
	fc = e.Predict(0, []Summary{mk(980, 5, false), mk(1010, 30, false)})
	if len(fc.Stormy) != 1 {
		t.Fatalf("rules misfired: %+v", fc)
	}
}

func coreBC(op string, t, window int) *folder.Briefcase {
	b := folder.NewBriefcase()
	if op != "" {
		b.PutString(OpFolder, op)
	}
	b.PutString(TimeFolder, strconv.Itoa(t))
	b.PutString(WindowFolder, strconv.Itoa(window))
	return b
}
