package stormcast

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// Expert is the rule-based storm predictor (the "expert system"). Its
// rules fire on reduced features only, so the roaming and the centralized
// strategies feed it identical inputs.
type Expert struct {
	// PressureThreshold: a site counts as stormy when its window minimum
	// pressure is below this and still falling.
	PressureThreshold float64
	// WindThreshold: or when its window maximum wind exceeds this.
	WindThreshold float64
	// Quorum is how many stormy sites make a storm forecast.
	Quorum int
}

// DefaultExpert matches the DefaultModel's storm signature.
func DefaultExpert() Expert {
	return Expert{PressureThreshold: 992, WindThreshold: 24, Quorum: 2}
}

// Forecast is the expert system's output.
type Forecast struct {
	T      int
	Storm  bool
	Stormy []string // sites whose features crossed the thresholds
}

// Predict applies the rules to a set of site summaries.
func (e Expert) Predict(t int, summaries []Summary) Forecast {
	f := Forecast{T: t}
	for _, s := range summaries {
		lowAndFalling := s.MinPressure < e.PressureThreshold && s.Falling
		windy := s.MaxWind > e.WindThreshold
		if lowAndFalling || windy {
			f.Stormy = append(f.Stormy, s.Site)
		}
	}
	f.Storm = len(f.Stormy) >= e.Quorum
	return f
}

// collectorScript is the roaming StormCast agent: at each sensor site it
// meets the local sensor (which appends a locally reduced summary to the
// briefcase) and then jumps to the next site on its itinerary. Raw
// observations never leave their site.
const collectorScript = `
	meet sensor
	if {[bc_len ITIN] > 0} {
		jump [bc_dequeue ITIN]
	}
`

// RoamingForecast is the agent-structured StormCast: a TacL collector
// agent hops from sensor site to sensor site, meets the local sensor,
// reduces the observation window to a summary *at the data's site*, and
// carries only summaries onward.
func RoamingForecast(ctx context.Context, home *core.Site, sites []vnet.SiteID,
	t, window int, expert Expert) (Forecast, error) {

	if len(sites) == 0 {
		return Forecast{}, fmt.Errorf("stormcast: no sensor sites")
	}
	bc := folder.NewBriefcase()
	bc.PutString(OpFolder, "summary")
	bc.PutString(TimeFolder, strconv.Itoa(t))
	bc.PutString(WindowFolder, strconv.Itoa(window))
	itin := folder.New()
	for _, site := range sites[1:] {
		itin.PushString(string(site))
	}
	bc.Put("ITIN", itin)
	bc.Ensure(folder.CodeFolder).PushString(collectorScript)
	if err := home.RemoteMeet(ctx, sites[0], core.AgTacl, bc); err != nil {
		return Forecast{}, fmt.Errorf("stormcast: launching collector: %w", err)
	}
	sf, err := bc.Folder(SummaryFolder)
	if err != nil {
		return Forecast{}, fmt.Errorf("stormcast: no summaries gathered: %w", err)
	}
	summaries := make([]Summary, 0, sf.Len())
	for _, raw := range sf.Strings() {
		s, err := ParseSummary(raw)
		if err != nil {
			return Forecast{}, err
		}
		summaries = append(summaries, s)
	}
	return expert.Predict(t, summaries), nil
}

// CentralForecast is the client-server baseline: the home site pulls every
// sensor's raw observation window over the network and reduces centrally.
// The forecast is identical; the bytes moved are not.
func CentralForecast(ctx context.Context, home *core.Site, sites []vnet.SiteID,
	t, window int, expert Expert) (Forecast, error) {

	var summaries []Summary
	for _, site := range sites {
		bc := folder.NewBriefcase()
		bc.PutString(OpFolder, "raw")
		bc.PutString(TimeFolder, strconv.Itoa(t))
		bc.PutString(WindowFolder, strconv.Itoa(window))
		if err := home.RemoteMeet(ctx, site, AgSensor, bc); err != nil {
			return Forecast{}, fmt.Errorf("stormcast: central pull from %s: %w", site, err)
		}
		of, err := bc.Folder(ObsFolder)
		if err != nil {
			return Forecast{}, fmt.Errorf("stormcast: no observations from %s: %w", site, err)
		}
		var obs []Observation
		for _, raw := range of.Strings() {
			o, err := ParseObservation(raw)
			if err != nil {
				return Forecast{}, err
			}
			obs = append(obs, o)
		}
		if len(obs) == 0 {
			continue
		}
		summaries = append(summaries, Summarize(string(site), obs[0].X, obs[0].Y, obs))
	}
	return expert.Predict(t, summaries), nil
}

// Field is a deployed sensor grid: one site per cell plus a home site.
type Field struct {
	Sys   *core.System
	Model Model
	Home  *core.Site
	Sites []vnet.SiteID // sensor sites in row-major grid order
}

// NewField builds a w×h sensor grid on a fresh simulated system. Site 0 is
// the home (forecast) site; sites 1..w*h host one sensor each.
func NewField(w, h int, seed int64, cfg core.SystemConfig) *Field {
	cfg.Seed = seed
	sys := core.NewSystem(w*h+1, cfg)
	model := DefaultModel(w, h, seed)
	f := &Field{Sys: sys, Model: model, Home: sys.SiteAt(0)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			site := sys.SiteAt(1 + y*w + x)
			InstallSensor(site, model, x, y)
			f.Sites = append(f.Sites, site.ID())
		}
	}
	return f
}

// Accuracy scores a forecast function against ground truth over timesteps
// [t0, t1), returning the fraction of correct storm/no-storm calls.
func (f *Field) Accuracy(ctx context.Context, t0, t1, window int, expert Expert,
	forecast func(ctx context.Context, home *core.Site, sites []vnet.SiteID, t, window int, e Expert) (Forecast, error),
) (float64, error) {
	if t1 <= t0 {
		return 0, fmt.Errorf("stormcast: empty time range [%d,%d)", t0, t1)
	}
	correct := 0
	for t := t0; t < t1; t++ {
		fc, err := forecast(ctx, f.Home, f.Sites, t, window, expert)
		if err != nil {
			return 0, err
		}
		if fc.Storm == f.Model.StormInWindow(t, window) {
			correct++
		}
	}
	return float64(correct) / float64(t1-t0), nil
}
