package mesh

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleFrames() []*Frame {
	return []*Frame{
		{Type: TypePing},
		{Type: TypeAck, Entries: []Entry{
			{Site: "site-0", State: StateAlive, Inc: 0, LoadSeq: 1, Load: 0, Agents: 0},
		}},
		{Type: TypePingReq, Target: "site-9", Entries: []Entry{
			{Site: "site-1", State: StateSuspect, Inc: 3, LoadSeq: 17, Load: 4, Agents: 1200},
			{Site: "site-2", State: StateDead, Inc: 1 << 40, LoadSeq: 9, Load: 0, Agents: 0},
			{Site: "site-3", State: StateLeft, Inc: 2, LoadSeq: 1, Load: 1, Agents: 7},
		}},
		{Type: TypeJoin, Entries: []Entry{
			{Site: "tromso/weather", State: StateAlive, Inc: 1, LoadSeq: 2, Load: 3, Agents: 4},
		}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		enc := AppendFrame(nil, f)
		got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if got.Type != f.Type || got.Target != f.Target {
			t.Fatalf("header round-trip: got %+v want %+v", got, f)
		}
		if len(got.Entries) != len(f.Entries) {
			t.Fatalf("entries round-trip: got %d want %d", len(got.Entries), len(f.Entries))
		}
		for i := range f.Entries {
			if !reflect.DeepEqual(got.Entries[i], f.Entries[i]) {
				t.Fatalf("entry %d: got %+v want %+v", i, got.Entries[i], f.Entries[i])
			}
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	valid := AppendFrame(nil, sampleFrames()[2])
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrame},
		{"one byte", []byte{FrameVersion}, ErrFrame},
		{"future version", append([]byte{FrameVersion + 1}, valid[1:]...), ErrVersion},
		{"zero type", []byte{FrameVersion, 0, 0, 0}, ErrFrame},
		{"huge type", []byte{FrameVersion, 200, 0, 0}, ErrFrame},
		{"truncated", valid[:len(valid)-3], ErrFrame},
		{"trailing", append(append([]byte{}, valid...), 0xff), ErrFrame},
		{"lying count", []byte{FrameVersion, TypePing, 0, 0xff, 0xff, 0x03}, ErrFrame},
		{"giant name", append([]byte{FrameVersion, TypePing}, 0xff, 0xff, 0xff, 0x7f), ErrFrame},
	}
	for _, tc := range cases {
		f, err := DecodeFrame(tc.data)
		if err == nil {
			t.Fatalf("%s: decoded %+v, want error", tc.name, f)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// A future version must be ignored (error, no panic), per the mixed-fleet
// upgrade story: old members treat new frames as noise, not as a crash.
func TestDecodeFrameFutureVersion(t *testing.T) {
	data := AppendFrame(nil, &Frame{Type: TypePing})
	data[0] = 99
	if _, err := DecodeFrame(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// FuzzGossipDecode asserts the frame decoder never panics on arbitrary
// bytes, refuses frames of unknown versions, and is a true inverse of the
// encoder on everything it accepts.
func FuzzGossipDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{FrameVersion})
	f.Add([]byte{FrameVersion + 1, TypePing, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(data) > 0 && data[0] != FrameVersion {
			t.Fatalf("accepted frame of version %d", data[0])
		}
		// Accepted frames must re-encode to something that decodes equal —
		// the codec is canonical on its accepted set.
		enc := AppendFrame(nil, fr)
		fr2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Target != fr.Target || len(fr2.Entries) != len(fr.Entries) {
			t.Fatalf("re-encode not stable: %+v vs %+v", fr, fr2)
		}
		for i := range fr.Entries {
			if !reflect.DeepEqual(fr.Entries[i], fr2.Entries[i]) {
				t.Fatalf("entry %d not stable: %+v vs %+v", i, fr.Entries[i], fr2.Entries[i])
			}
		}
	})
}
