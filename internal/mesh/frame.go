package mesh

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/vnet"
)

// KindGossip is the vnet message kind mesh frames travel under; the mesh
// installs a handler for it through core.Site.HandleKind, so gossip shares
// the endpoint (and, on TCP, the coalesced connections) with meets.
const KindGossip = "mesh.gossip"

// FrameVersion is the wire version this implementation speaks. Frames with
// any other version decode to ErrVersion and are ignored by the handler —
// a mixed-version fleet degrades to "strangers", never to a panic.
const FrameVersion = 1

// Frame types.
const (
	// TypePing probes a member directly; the reply is a TypeAck frame.
	TypePing = byte(iota + 1)
	// TypePingReq asks a member to probe Target on the sender's behalf —
	// SWIM's indirect probe, which keeps one lossy link from generating a
	// false failure verdict.
	TypePingReq
	// TypeAck answers ping and ping-req.
	TypeAck
	// TypeJoin announces a joining member to a seed; the ack carries the
	// seed's full membership table.
	TypeJoin
)

// State is a member's protocol state.
type State uint8

// Member states, in merge-precedence order within one incarnation:
// Left > Dead > Suspect > Alive.
const (
	StateAlive State = iota + 1
	StateSuspect
	StateDead
	StateLeft
)

// String implements fmt.Stringer for test output.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Entry is one gossiped membership fact: a site, its state at an
// incarnation, and its latest piggybacked load report.
type Entry struct {
	Site vnet.SiteID
	// State at Inc. Higher incarnations override lower ones regardless of
	// state; within one incarnation the higher State value wins (a member
	// can always refute suspicion by re-announcing itself at Inc+1).
	State State
	Inc   uint64
	// LoadSeq orders load reports for one site; Load and Agents are valid
	// as of that sequence number. Stale reports (lower LoadSeq) never
	// overwrite fresher ones, whatever path they gossiped along.
	LoadSeq uint64
	Load    int64
	Agents  int64
}

// Frame is one gossip message.
type Frame struct {
	Type byte
	// Target is the site a TypePingReq asks the receiver to probe; empty
	// otherwise.
	Target vnet.SiteID
	// Entries piggyback membership updates — every frame type carries them,
	// which is what makes dissemination free: detection traffic is the
	// gossip substrate.
	Entries []Entry
}

// Frame decode errors.
var (
	// ErrVersion marks a frame from a different protocol version.
	ErrVersion = errors.New("mesh: unknown frame version")
	// ErrFrame marks a structurally invalid frame.
	ErrFrame = errors.New("mesh: bad frame")
)

// maxSiteName bounds a decoded site-name length: vnet site IDs are short
// strings, and the bound keeps a hostile frame from claiming a gigabyte
// name.
const maxSiteName = 256

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = append(dst, FrameVersion, f.Type)
	dst = appendString(dst, string(f.Target))
	dst = binary.AppendUvarint(dst, uint64(len(f.Entries)))
	for i := range f.Entries {
		e := &f.Entries[i]
		dst = appendString(dst, string(e.Site))
		dst = append(dst, byte(e.State))
		dst = binary.AppendUvarint(dst, e.Inc)
		dst = binary.AppendUvarint(dst, e.LoadSeq)
		dst = binary.AppendUvarint(dst, uint64(e.Load))
		dst = binary.AppendUvarint(dst, uint64(e.Agents))
	}
	return dst
}

// DecodeFrame parses a gossip frame. It never panics on hostile input; a
// frame of a future version returns ErrVersion so callers can ignore it.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: truncated header", ErrFrame)
	}
	if data[0] != FrameVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, data[0])
	}
	f := &Frame{Type: data[1]}
	if f.Type < TypePing || f.Type > TypeJoin {
		return nil, fmt.Errorf("%w: type %d", ErrFrame, f.Type)
	}
	rest := data[2:]
	target, rest, err := takeString(rest)
	if err != nil {
		return nil, err
	}
	f.Target = vnet.SiteID(target)
	n, used := binary.Uvarint(rest)
	if used <= 0 {
		return nil, fmt.Errorf("%w: entry count", ErrFrame)
	}
	rest = rest[used:]
	// Each entry costs at least 6 bytes on the wire; a count beyond that is
	// a lie, refused before it can size an allocation.
	if n > uint64(len(rest)/6+1) {
		return nil, fmt.Errorf("%w: entry count %d exceeds payload", ErrFrame, n)
	}
	f.Entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e Entry
		var site string
		site, rest, err = takeString(rest)
		if err != nil {
			return nil, err
		}
		e.Site = vnet.SiteID(site)
		if len(rest) < 1 {
			return nil, fmt.Errorf("%w: truncated entry", ErrFrame)
		}
		e.State = State(rest[0])
		if e.State < StateAlive || e.State > StateLeft {
			return nil, fmt.Errorf("%w: state %d", ErrFrame, e.State)
		}
		rest = rest[1:]
		var vals [4]uint64
		for j := range vals {
			v, used := binary.Uvarint(rest)
			if used <= 0 {
				return nil, fmt.Errorf("%w: truncated entry varint", ErrFrame)
			}
			vals[j] = v
			rest = rest[used:]
		}
		e.Inc, e.LoadSeq = vals[0], vals[1]
		e.Load, e.Agents = int64(vals[2]), int64(vals[3])
		if e.Load < 0 || e.Agents < 0 {
			return nil, fmt.Errorf("%w: negative load report", ErrFrame)
		}
		f.Entries = append(f.Entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(rest))
	}
	return f, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func takeString(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > maxSiteName {
		return "", nil, fmt.Errorf("%w: string length", ErrFrame)
	}
	data = data[used:]
	if uint64(len(data)) < n {
		return "", nil, fmt.Errorf("%w: truncated string", ErrFrame)
	}
	return string(data[:n]), data[n:], nil
}
