package mesh

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/vnet"
)

func siteNames(n int) []vnet.SiteID {
	out := make([]vnet.SiteID, n)
	for i := range out {
		out[i] = vnet.SiteID(fmt.Sprintf("site-%d", i))
	}
	return out
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := BuildRing(nil, 0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r = BuildRing([]vnet.SiteID{"solo"}, 0)
	for _, k := range []string{"a", "b", "weather/tromso"} {
		owner, ok := r.Owner(k)
		if !ok || owner != "solo" {
			t.Fatalf("single-site ring: Owner(%q) = %q, %v", k, owner, ok)
		}
	}
}

// The ring must depend only on the membership set, not on discovery order:
// two sites that converged on the same alive set must resolve every agent
// identically, whatever order gossip delivered the members in.
func TestRingOrderIndependent(t *testing.T) {
	sites := siteNames(17)
	a := BuildRing(sites, 0)
	shuffled := append([]vnet.SiteID(nil), sites...)
	rng := rand.New(rand.NewPCG(7, 7))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := BuildRing(shuffled, 0)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("agent-%d", i)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("Owner(%q) differs by build order: %q vs %q", key, oa, ob)
		}
	}
}

// Virtual nodes must spread ownership evenly enough that no site carries a
// pathological share of the agent population.
func TestRingBalance(t *testing.T) {
	const sites, keys = 20, 100000
	r := BuildRing(siteNames(sites), DefaultVNodes)
	counts := map[vnet.SiteID]int{}
	for i := 0; i < keys; i++ {
		owner, ok := r.Owner(fmt.Sprintf("agent-%d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[owner]++
	}
	if len(counts) != sites {
		t.Fatalf("only %d of %d sites own keys", len(counts), sites)
	}
	min, max := keys, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// Mean share is 5000; 64 vnodes should keep the spread well under 2x.
	if max > 2*min {
		t.Fatalf("ring imbalance: min %d max %d", min, max)
	}
}

// Removing one site must move only the keys that site owned — consistent
// hashing's defining property, and what keeps a site death from reshuffling
// the whole fleet's agent placement.
func TestRingMinimalDisruption(t *testing.T) {
	const n, keys = 12, 20000
	sites := siteNames(n)
	before := BuildRing(sites, 0)
	after := BuildRing(sites[:n-1], 0) // drop site-11
	dead := sites[n-1]
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("agent-%d", i)
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if ob == dead {
			if oa == dead {
				t.Fatalf("Owner(%q) still the removed site", key)
			}
			moved++
			continue
		}
		if oa != ob {
			t.Fatalf("Owner(%q) moved %q -> %q though %q stayed alive", key, ob, oa, ob)
		}
	}
	if moved == 0 {
		t.Fatal("removed site owned no keys — balance test should have caught this")
	}
}

func TestRingSitesSorted(t *testing.T) {
	r := BuildRing([]vnet.SiteID{"c", "a", "b"}, 4)
	got := r.Sites()
	want := []vnet.SiteID{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites() = %v, want %v", got, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := BuildRing(siteNames(100), DefaultVNodes)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("agent-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i&1023])
	}
}
