package mesh

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/vnet"
)

// Config tunes a mesh member. The zero value gets usable defaults: with
// them, a killed site is detected, declared dead, and disseminated fleet-wide
// in well under 2 simulated seconds for fleets up to ~100 sites.
type Config struct {
	// Seeds are sites to contact on Join. A seed is only a bootstrap
	// contact — once joined, membership maintains itself by gossip and any
	// member can seed the next joiner.
	Seeds []vnet.SiteID
	// ProbeInterval is the protocol period: one Tick per interval when the
	// mesh is Started. Convergence times scale with it.
	ProbeInterval time.Duration // default 200ms
	// ProbeTimeout bounds each direct or indirect probe RPC.
	ProbeTimeout time.Duration // default 100ms
	// SuspectTicks is how many protocol periods a suspect gets to refute
	// before it is declared dead.
	SuspectTicks int // default 3
	// IndirectProbes is how many members relay a probe when the direct
	// ping fails (SWIM's k).
	IndirectProbes int // default 2
	// PiggybackMax caps membership entries per frame — the bounded-fanout
	// knob: gossip bytes per period are O(PiggybackMax), independent of
	// how much churn is pending.
	PiggybackMax int // default 16
	// RetransmitMult scales per-update retransmissions: each local update
	// is piggybacked on RetransmitMult×log2(n+1) outgoing frames.
	RetransmitMult int // default 4
	// DeadRetentionTicks is how long a dead/left tombstone is remembered,
	// so late gossip about a removed member cannot resurrect it.
	DeadRetentionTicks int // default 64
	// VNodes is the ring's virtual-node count per site.
	VNodes int // default DefaultVNodes
	// Seed seeds probe-order shuffling; 0 derives one from the site name.
	Seed int64
	// Logf, when set, receives membership transitions.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults(site vnet.SiteID) {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 200 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 100 * time.Millisecond
	}
	if c.SuspectTicks <= 0 {
		c.SuspectTicks = 3
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = 2
	}
	if c.PiggybackMax <= 0 {
		c.PiggybackMax = 16
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = 4
	}
	if c.DeadRetentionTicks <= 0 {
		c.DeadRetentionTicks = 64
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Seed == 0 {
		c.Seed = int64(fnv64(string(site)))
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// LoadSink consumes the mesh's membership and load stream. *broker.Broker
// satisfies it (given its Drop method), which is how the paper's matchmaker
// is fed: every alive mesh member becomes a provider row, every gossiped
// load report a Report, every death a Drop.
type LoadSink interface {
	Register(service, site, agent string, capacity int64)
	Report(site string, load, seq int64)
	Drop(site string)
}

// ErrNoSeed is returned by Join when no configured seed answered.
var ErrNoSeed = errors.New("mesh: no seed reachable")

// member is the local view of one remote site (and of self).
type member struct {
	Entry
	// suspectedAt/diedAt record the tick of the transition, driving the
	// suspect timeout and tombstone retention.
	suspectedAt uint64
	diedAt      uint64
}

// update is one piggyback-queue item: an entry still owed `left` more
// transmissions.
type update struct {
	e    Entry
	left int
}

// Mesh is one site's membership in the fleet. Create with New, then either
// drive protocol periods explicitly with Tick (tests, simulations,
// benchmarks — simulated time is ticks × ProbeInterval) or Start a
// real-time ticker (tacomad).
type Mesh struct {
	site *core.Site
	cfg  Config

	ringv atomic.Pointer[Ring]

	mu      sync.Mutex
	members map[vnet.SiteID]*member
	queue   []update
	inc     uint64 // self incarnation (bumped to refute suspicion)
	tick    uint64 // protocol period counter
	rng     *rand.Rand
	order   []vnet.SiteID // shuffled probe round-robin
	orderAt int

	sink        LoadSink
	sinkService string
	sinkAgent   string
	sinkCap     int64

	onChange func(alive []vnet.SiteID)

	tickMu  sync.Mutex // serializes protocol periods
	stop    chan struct{}
	stopped sync.WaitGroup
	started bool
}

// New creates a mesh member bound to a site: it installs the gossip frame
// handler on the site's endpoint, installs itself as the site's
// agent-placement resolver, and starts with a one-member (self) ring. Call
// Join to meet the rest of the fleet.
func New(site *core.Site, cfg Config) *Mesh {
	cfg.setDefaults(site.ID())
	m := &Mesh{
		site:    site,
		cfg:     cfg,
		members: make(map[vnet.SiteID]*member),
		rng:     rand.New(rand.NewPCG(uint64(cfg.Seed), 0x6d657368)),
	}
	self := &member{Entry: Entry{Site: site.ID(), State: StateAlive}}
	m.members[site.ID()] = self
	m.rebuildRingLocked()
	site.HandleKind(KindGossip, m.handle)
	site.SetResolver(m)
	return m
}

// Site returns the site this mesh member is bound to.
func (m *Mesh) Site() *core.Site { return m.site }

// Ring returns the current placement ring snapshot.
func (m *Mesh) Ring() *Ring { return m.ringv.Load() }

// Resolve implements core.Resolver: the ring owner of the agent name.
func (m *Mesh) Resolve(agent string) (vnet.SiteID, bool) {
	return m.ringv.Load().Owner(agent)
}

// Members returns a snapshot of every known member (including tombstones).
func (m *Mesh) Members() []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, mem.Entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Alive returns the sites currently considered alive or suspect (suspects
// stay in the ring until the timeout declares them dead), sorted.
func (m *Mesh) Alive() []vnet.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aliveLocked()
}

func (m *Mesh) aliveLocked() []vnet.SiteID {
	out := make([]vnet.SiteID, 0, len(m.members))
	for id, mem := range m.members {
		if mem.State == StateAlive || mem.State == StateSuspect {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Place returns the least-loaded alive site — where a new launch should go.
// Ties break on resident-agent count, then name, so every member that has
// converged on the same load reports directs launches the same way.
func (m *Mesh) Place() (vnet.SiteID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *member
	for _, mem := range m.members {
		if mem.State != StateAlive && mem.State != StateSuspect {
			continue
		}
		if best == nil ||
			mem.Load < best.Load ||
			(mem.Load == best.Load && mem.Agents < best.Agents) ||
			(mem.Load == best.Load && mem.Agents == best.Agents && mem.Site < best.Site) {
			best = mem
		}
	}
	if best == nil {
		return "", false
	}
	return best.Site, true
}

// OnChange installs a callback invoked (under the mesh lock — keep it
// cheap) whenever the alive set changes, with the new alive membership.
func (m *Mesh) OnChange(fn func(alive []vnet.SiteID)) {
	m.mu.Lock()
	m.onChange = fn
	m.mu.Unlock()
}

// FeedLoads connects a LoadSink (typically a *broker.Broker): every alive
// member is registered as a provider of service under the given meetable
// agent name and capacity, load reports stream in as they gossip, and dead
// members are dropped. The current membership is pushed immediately.
func (m *Mesh) FeedLoads(sink LoadSink, service, agent string, capacity int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sink, m.sinkService, m.sinkAgent, m.sinkCap = sink, service, agent, capacity
	for _, mem := range m.members {
		if mem.State == StateAlive || mem.State == StateSuspect {
			sink.Register(service, string(mem.Site), agent, capacity)
			sink.Report(string(mem.Site), mem.Load, int64(mem.LoadSeq))
		}
	}
}

// Join contacts the configured seeds and merges their membership tables.
// At least one seed must answer; joining an empty seed list (or only
// ourselves) succeeds trivially — we are a fleet of one until someone joins
// us.
func (m *Mesh) Join(ctx context.Context) error {
	var contacted, errs int
	var lastErr error
	for _, seed := range m.cfg.Seeds {
		if seed == m.site.ID() {
			continue
		}
		contacted++
		if err := m.callAndMerge(ctx, seed, TypeJoin, "", m.cfg.ProbeTimeout); err != nil {
			errs++
			lastErr = err
			continue
		}
	}
	if contacted > 0 && errs == contacted {
		return fmt.Errorf("%w: %v", ErrNoSeed, lastErr)
	}
	return nil
}

// Leave announces a graceful departure to a few members (best effort) so
// the fleet removes us without waiting out a suspicion timeout.
func (m *Mesh) Leave(ctx context.Context) {
	m.mu.Lock()
	m.inc++
	self := m.members[m.site.ID()]
	self.State = StateLeft
	self.Inc = m.inc
	self.diedAt = m.tick
	if m.sink != nil {
		m.sink.Drop(string(m.site.ID()))
	}
	targets := m.aliveLocked()
	m.membershipChangedLocked()
	m.mu.Unlock()
	notified := 0
	for _, t := range targets {
		if t == m.site.ID() {
			continue
		}
		if err := m.callAndMerge(ctx, t, TypePing, "", m.cfg.ProbeTimeout); err == nil {
			if notified++; notified >= m.cfg.IndirectProbes+1 {
				break
			}
		}
	}
}

// Start runs the protocol in real time: one Tick per ProbeInterval until
// Stop. Tests and benchmarks that want simulated time call Tick directly
// instead.
func (m *Mesh) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.mu.Unlock()
	m.stopped.Add(1)
	go func() {
		defer m.stopped.Done()
		t := time.NewTicker(m.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Tick(context.Background())
			}
		}
	}()
}

// Stop halts a Started ticker. The frame handler stays installed: a stopped
// mesh still answers probes (and so looks alive); tear the site down to
// look dead.
func (m *Mesh) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	close(m.stop)
	m.mu.Unlock()
	m.stopped.Wait()
}

// Tick runs one protocol period: refresh the self load report, probe one
// member (with indirect fallback), and expire suspicion and retention
// timers. Simulated-time convergence is measured in Ticks: one Tick stands
// for ProbeInterval of protocol time. Ticks serialize; concurrent callers
// queue.
func (m *Mesh) Tick(ctx context.Context) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	m.mu.Lock()
	m.tick++
	now := m.tick
	// Self report: load and resident-agent population at this period.
	self := m.members[m.site.ID()]
	self.LoadSeq = now
	self.Load = m.site.Load()
	self.Agents = int64(m.site.AgentCount())
	self.Inc = m.inc
	m.reportLocked(self)
	target, ok := m.nextProbeTargetLocked()
	m.expireLocked(now)
	m.mu.Unlock()

	if !ok {
		return
	}
	if err := m.callAndMerge(ctx, target, TypePing, "", m.cfg.ProbeTimeout); err == nil {
		return
	}
	// Direct probe failed: ask k members to probe on our behalf before
	// concluding anything — one lossy or partitioned link must not produce
	// a fleet-wide death verdict.
	if m.indirectProbe(ctx, target) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[target]
	if !ok || mem.State != StateAlive {
		return
	}
	mem.State = StateSuspect
	mem.suspectedAt = m.tick
	m.cfg.logf("mesh %s: suspect %s (inc %d)", m.site.ID(), target, mem.Inc)
	m.enqueueLocked(mem.Entry)
}

// indirectProbe asks up to IndirectProbes random members to ping target;
// true when any relay confirms the target alive.
func (m *Mesh) indirectProbe(ctx context.Context, target vnet.SiteID) bool {
	m.mu.Lock()
	var relays []vnet.SiteID
	for _, id := range m.aliveLocked() {
		if id != m.site.ID() && id != target {
			relays = append(relays, id)
		}
	}
	m.rng.Shuffle(len(relays), func(i, j int) { relays[i], relays[j] = relays[j], relays[i] })
	if len(relays) > m.cfg.IndirectProbes {
		relays = relays[:m.cfg.IndirectProbes]
	}
	m.mu.Unlock()
	if len(relays) == 0 {
		return false
	}
	ok := make(chan bool, len(relays))
	for _, r := range relays {
		go func(relay vnet.SiteID) {
			// The relay must reach us, probe the target (one ProbeTimeout of
			// its own), and answer — so the outer call gets a multiple of the
			// single-hop budget, or indirect probes would time out exactly
			// when they matter: when links are slow.
			ok <- m.callAndMerge(ctx, relay, TypePingReq, target, 3*m.cfg.ProbeTimeout) == nil
		}(r)
	}
	alive := false
	for range relays {
		if <-ok {
			alive = true
		}
	}
	return alive
}

// nextProbeTargetLocked picks the next member in the shuffled round-robin —
// SWIM's probe schedule, which bounds worst-case detection latency to one
// full round instead of the coupon-collector tail of pure random picks.
func (m *Mesh) nextProbeTargetLocked() (vnet.SiteID, bool) {
	for tries := 0; tries < 2; tries++ {
		for m.orderAt < len(m.order) {
			id := m.order[m.orderAt]
			m.orderAt++
			if mem, ok := m.members[id]; ok &&
				(mem.State == StateAlive || mem.State == StateSuspect) {
				return id, true
			}
		}
		m.order = m.order[:0]
		for id, mem := range m.members {
			if id == m.site.ID() {
				continue
			}
			if mem.State == StateAlive || mem.State == StateSuspect {
				m.order = append(m.order, id)
			}
		}
		sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
		m.rng.Shuffle(len(m.order), func(i, j int) { m.order[i], m.order[j] = m.order[j], m.order[i] })
		m.orderAt = 0
	}
	return "", false
}

// expireLocked advances suspicion and tombstone timers at tick now.
func (m *Mesh) expireLocked(now uint64) {
	changed := false
	for id, mem := range m.members {
		switch mem.State {
		case StateSuspect:
			if now-mem.suspectedAt >= uint64(m.cfg.SuspectTicks) {
				mem.State = StateDead
				mem.diedAt = now
				m.cfg.logf("mesh %s: dead %s (inc %d)", m.site.ID(), id, mem.Inc)
				m.enqueueLocked(mem.Entry)
				if m.sink != nil {
					m.sink.Drop(string(id))
				}
				changed = true
			}
		case StateDead, StateLeft:
			// The self entry is never evicted: Tick and buildFrameLocked
			// dereference it unconditionally, and a mesh that has Left may
			// keep ticking and answering frames until the site tears down.
			if id != m.site.ID() && now-mem.diedAt >= uint64(m.cfg.DeadRetentionTicks) {
				delete(m.members, id)
			}
		}
	}
	if changed {
		m.membershipChangedLocked()
	}
}

// callAndMerge sends one frame (with piggyback), bounded by timeout, and
// merges the ack.
func (m *Mesh) callAndMerge(ctx context.Context, to vnet.SiteID, typ byte, target vnet.SiteID, timeout time.Duration) error {
	f := m.buildFrame(typ, target)
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := m.site.Endpoint().Call(ctx, to, KindGossip, AppendFrame(nil, f))
	if err != nil {
		return err
	}
	ack, err := DecodeFrame(resp)
	if err != nil {
		return err
	}
	m.mergeEntries(ack.Entries)
	return nil
}

// buildFrame assembles an outgoing frame: the self entry plus up to
// PiggybackMax pending updates.
func (m *Mesh) buildFrame(typ byte, target vnet.SiteID) *Frame {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buildFrameLocked(typ, target)
}

func (m *Mesh) buildFrameLocked(typ byte, target vnet.SiteID) *Frame {
	f := &Frame{Type: typ, Target: target}
	self := m.members[m.site.ID()]
	f.Entries = append(f.Entries, self.Entry)
	// Fewest-transmissions-first (SWIM §4.1): when more than PiggybackMax
	// updates are pending, the least-gossiped ones go out first — otherwise
	// the queue front would be retransmitted every frame while updates
	// behind it starve. Ties keep queue (arrival) order.
	sort.SliceStable(m.queue, func(i, j int) bool {
		return m.queue[i].left > m.queue[j].left
	})
	n := 0
	for i := 0; i < len(m.queue) && n < m.cfg.PiggybackMax; i++ {
		u := &m.queue[i]
		if u.e.Site == m.site.ID() {
			continue // self already attached, fresher
		}
		f.Entries = append(f.Entries, u.e)
		u.left--
		n++
	}
	// Compact spent updates.
	live := m.queue[:0]
	for _, u := range m.queue {
		if u.left > 0 {
			live = append(live, u)
		}
	}
	m.queue = live
	return f
}

// enqueueLocked queues an entry for piggybacked dissemination. A fresh
// update for a site replaces any queued older one (the new fact supersedes
// it everywhere).
func (m *Mesh) enqueueLocked(e Entry) {
	n := len(m.members)
	left := m.cfg.RetransmitMult * (bits.Len(uint(n)) + 1)
	for i := range m.queue {
		if m.queue[i].e.Site == e.Site {
			m.queue[i] = update{e: e, left: left}
			return
		}
	}
	m.queue = append(m.queue, update{e: e, left: left})
}

// mergeEntries folds gossiped entries into the member table.
func (m *Mesh) mergeEntries(entries []Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, e := range entries {
		if m.mergeOneLocked(e) {
			changed = true
		}
	}
	if changed {
		m.membershipChangedLocked()
	}
}

// stateRank orders states within one incarnation: later ranks override
// earlier ones. A suspect overrides alive at the same incarnation (that is
// what forces the suspect to refute by bumping its incarnation), dead
// overrides suspect, left overrides everything — a graceful goodbye is
// final.
func stateRank(s State) int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	case StateLeft:
		return 3
	}
	return -1
}

// mergeOneLocked applies one gossiped fact; reports whether the alive set
// changed.
func (m *Mesh) mergeOneLocked(e Entry) bool {
	if e.Site == m.site.ID() {
		// Gossip about ourselves. Any non-alive claim at our current (or
		// later) incarnation is refuted by re-announcing at a higher one —
		// SWIM's liveness proof: only the member itself ever bumps its
		// incarnation. Unless we left on purpose: refuting our own goodbye
		// would resurrect us from the ack that echoes it back.
		if m.members[e.Site].State == StateLeft {
			return false
		}
		if e.State != StateAlive && e.Inc >= m.inc {
			m.inc = e.Inc + 1
			self := m.members[e.Site]
			self.Inc = m.inc
			self.State = StateAlive
			m.cfg.logf("mesh %s: refuting %s claim (inc %d -> %d)", m.site.ID(), e.State, e.Inc, m.inc)
			m.enqueueLocked(self.Entry)
		}
		return false
	}
	mem, known := m.members[e.Site]
	if !known {
		if e.State == StateDead || e.State == StateLeft {
			// Tombstone for a stranger: remember it so late alive-gossip at
			// an older incarnation cannot resurrect the member.
			m.members[e.Site] = &member{Entry: e, diedAt: m.tick}
			return false
		}
		mem = &member{Entry: e}
		if e.State == StateSuspect {
			mem.suspectedAt = m.tick
		}
		m.members[e.Site] = mem
		m.cfg.logf("mesh %s: learned %s (%s, inc %d)", m.site.ID(), e.Site, e.State, e.Inc)
		m.enqueueLocked(mem.Entry)
		m.registerLocked(mem)
		return true
	}
	wasInRing := mem.State == StateAlive || mem.State == StateSuspect
	newer := e.Inc > mem.Inc ||
		(e.Inc == mem.Inc && stateRank(e.State) > stateRank(mem.State))
	if newer {
		mem.Inc = e.Inc
		mem.State = e.State
		switch e.State {
		case StateSuspect:
			mem.suspectedAt = m.tick
		case StateDead, StateLeft:
			mem.diedAt = m.tick
		}
		m.enqueueLocked(Entry{Site: e.Site, State: e.State, Inc: e.Inc,
			LoadSeq: mem.LoadSeq, Load: mem.Load, Agents: mem.Agents})
	}
	m.reportFromLocked(mem, e)
	nowInRing := mem.State == StateAlive || mem.State == StateSuspect
	if wasInRing != nowInRing {
		m.cfg.logf("mesh %s: %s is now %s (inc %d)", m.site.ID(), e.Site, mem.State, mem.Inc)
		if m.sink != nil {
			if nowInRing {
				m.registerLocked(mem)
			} else {
				m.sink.Drop(string(e.Site))
			}
		}
		return true
	}
	return false
}

// reportFromLocked folds a gossiped load report into a member (freshness by
// LoadSeq) and streams it to the sink.
func (m *Mesh) reportFromLocked(mem *member, e Entry) {
	if e.LoadSeq <= mem.LoadSeq {
		return
	}
	mem.LoadSeq = e.LoadSeq
	mem.Load = e.Load
	mem.Agents = e.Agents
	m.reportLocked(mem)
}

// reportLocked pushes a member's current load report to the sink.
func (m *Mesh) reportLocked(mem *member) {
	if m.sink != nil && (mem.State == StateAlive || mem.State == StateSuspect) {
		m.sink.Report(string(mem.Site), mem.Load, int64(mem.LoadSeq))
	}
}

// registerLocked adds a member to the sink's provider table.
func (m *Mesh) registerLocked(mem *member) {
	if m.sink != nil {
		m.sink.Register(m.sinkService, string(mem.Site), m.sinkAgent, m.sinkCap)
		m.sink.Report(string(mem.Site), mem.Load, int64(mem.LoadSeq))
	}
}

// membershipChangedLocked rebuilds the ring and fires the change callback.
func (m *Mesh) membershipChangedLocked() {
	m.rebuildRingLocked()
	if m.onChange != nil {
		m.onChange(m.aliveLocked())
	}
}

func (m *Mesh) rebuildRingLocked() {
	m.ringv.Store(BuildRing(m.aliveLocked(), m.cfg.VNodes))
}

// handle serves one incoming gossip frame (installed via Site.HandleKind).
func (m *Mesh) handle(from vnet.SiteID, _ string, payload []byte) ([]byte, error) {
	f, err := DecodeFrame(payload)
	if err != nil {
		// Unknown versions and malformed frames are ignored — the error
		// travels back to the (possibly newer) sender, and no local state
		// moves.
		return nil, err
	}
	m.mergeEntries(f.Entries)
	switch f.Type {
	case TypePing:
		// ack below
	case TypeJoin:
		// The joiner gets the full table, not just the piggyback window:
		// bootstrap is the one moment completeness beats bounded fanout.
		m.mu.Lock()
		ack := &Frame{Type: TypeAck}
		for _, mem := range m.members {
			ack.Entries = append(ack.Entries, mem.Entry)
		}
		m.mu.Unlock()
		return AppendFrame(nil, ack), nil
	case TypePingReq:
		if f.Target == "" || f.Target == m.site.ID() {
			return nil, fmt.Errorf("%w: ping-req target %q", ErrFrame, f.Target)
		}
		// Relay: probe the target on the requester's behalf. Our own probe
		// machinery merges whatever the target tells us; the requester gets
		// our ack only if the target answered.
		if err := m.callAndMerge(context.Background(), f.Target, TypePing, "", m.cfg.ProbeTimeout); err != nil {
			return nil, fmt.Errorf("mesh: indirect probe of %s failed: %w", f.Target, err)
		}
	case TypeAck:
		return nil, fmt.Errorf("%w: unexpected ack request", ErrFrame)
	}
	m.mu.Lock()
	ack := m.buildFrameLocked(TypeAck, "")
	m.mu.Unlock()
	_ = from
	return AppendFrame(nil, ack), nil
}
