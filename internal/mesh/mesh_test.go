package mesh

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// testProbeInterval is the simulated protocol period: one Tick stands for
// this much simulated time, which is how convergence bounds translate to
// seconds without real-time sleeping.
const testProbeInterval = 100 * time.Millisecond

// fleet is a simulated multi-site deployment with one mesh member per site.
type fleet struct {
	sys    *core.System
	meshes []*Mesh
}

func newFleet(t *testing.T, n int, cfg Config) *fleet {
	t.Helper()
	sys := core.NewSystem(n, core.SystemConfig{
		Seed: 42,
		// Short failure detection so probes to crashed sites fail fast in
		// real time; simulated time is counted in Ticks regardless.
		CallTimeout: 5 * time.Millisecond,
	})
	fl := &fleet{sys: sys}
	for i := 0; i < n; i++ {
		c := cfg
		if c.ProbeInterval == 0 {
			c.ProbeInterval = testProbeInterval
		}
		if c.ProbeTimeout == 0 {
			c.ProbeTimeout = 20 * time.Millisecond
		}
		if len(c.Seeds) == 0 && i > 0 {
			c.Seeds = []vnet.SiteID{sys.SiteAt(0).ID()}
		}
		fl.meshes = append(fl.meshes, New(sys.SiteAt(i), c))
	}
	return fl
}

// join joins every non-seed member and fails the test on any seed error.
func (fl *fleet) join(t *testing.T) {
	t.Helper()
	for i, m := range fl.meshes {
		if err := m.Join(context.Background()); err != nil {
			t.Fatalf("mesh %d join: %v", i, err)
		}
	}
}

// tickAll runs one protocol period on every live member.
func (fl *fleet) tickAll() {
	for _, m := range fl.meshes {
		if !fl.sys.Net.Crashed(m.Site().ID()) {
			m.Tick(context.Background())
		}
	}
}

// ticksUntil runs protocol periods until cond holds on every live member,
// returning how many it took; -1 if maxTicks was not enough.
func (fl *fleet) ticksUntil(maxTicks int, cond func(m *Mesh) bool) int {
	for tick := 1; tick <= maxTicks; tick++ {
		fl.tickAll()
		done := true
		for _, m := range fl.meshes {
			if fl.sys.Net.Crashed(m.Site().ID()) {
				continue
			}
			if !cond(m) {
				done = false
				break
			}
		}
		if done {
			return tick
		}
	}
	return -1
}

func aliveCount(m *Mesh) int { return len(m.Alive()) }

func TestMeshJoinConvergence(t *testing.T) {
	const n = 10
	fl := newFleet(t, n, Config{})
	fl.join(t)
	ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n })
	if ticks < 0 {
		for i, m := range fl.meshes {
			t.Logf("mesh %d alive: %v", i, m.Alive())
		}
		t.Fatalf("fleet never converged on %d members", n)
	}
	t.Logf("join convergence: %d ticks (%v simulated)", ticks, time.Duration(ticks)*testProbeInterval)

	// Converged members must agree on placement for every agent name.
	for i := 0; i < 500; i++ {
		agentName := fmt.Sprintf("agent-%d", i)
		want, ok := fl.meshes[0].Resolve(agentName)
		if !ok {
			t.Fatalf("no owner for %q", agentName)
		}
		for j, m := range fl.meshes[1:] {
			if got, _ := m.Resolve(agentName); got != want {
				t.Fatalf("mesh %d resolves %q to %q, mesh 0 to %q", j+1, agentName, got, want)
			}
		}
	}
}

// The acceptance bound: kill -9 one site; every survivor must detect the
// death, converge on the surviving membership, and agree on a consistent
// ring — every agent resolving to exactly one live site — within 2 seconds
// of simulated time.
func TestMeshKillConvergence(t *testing.T) {
	const n = 10
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}

	victim := fl.sys.SiteAt(3).ID()
	if err := fl.sys.Net.Crash(victim); err != nil {
		t.Fatal(err)
	}
	ticks := fl.ticksUntil(40, func(m *Mesh) bool {
		for _, id := range m.Alive() {
			if id == victim {
				return false
			}
		}
		return aliveCount(m) == n-1
	})
	if ticks < 0 {
		t.Fatalf("survivors never converged after killing %s", victim)
	}
	simulated := time.Duration(ticks) * testProbeInterval
	t.Logf("kill convergence: %d ticks (%v simulated)", ticks, simulated)
	if simulated >= 2*time.Second {
		t.Fatalf("convergence took %v simulated, want < 2s", simulated)
	}

	// Ring consistency after the kill: every agent name resolves to exactly
	// one owner, the same at every survivor, and never the dead site.
	for i := 0; i < 1000; i++ {
		agentName := fmt.Sprintf("agent-%d", i)
		owners := map[vnet.SiteID]bool{}
		for _, m := range fl.meshes {
			if fl.sys.Net.Crashed(m.Site().ID()) {
				continue
			}
			owner, ok := m.Resolve(agentName)
			if !ok {
				t.Fatalf("no owner for %q after kill", agentName)
			}
			owners[owner] = true
		}
		if len(owners) != 1 {
			t.Fatalf("%q resolves to %d owners after kill: %v", agentName, len(owners), owners)
		}
		for owner := range owners {
			if owner == victim {
				t.Fatalf("%q still resolves to the dead site", agentName)
			}
		}
	}
}

// A restarted site must rejoin: survivors hold it dead at its old
// incarnation, so its first gossip triggers SWIM refutation (incarnation
// bump) and resurrects it everywhere.
func TestMeshRestartRejoin(t *testing.T) {
	const n = 5
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	victim := fl.sys.SiteAt(2).ID()
	if err := fl.sys.Net.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if ticks := fl.ticksUntil(40, func(m *Mesh) bool { return aliveCount(m) == n-1 }); ticks < 0 {
		t.Fatal("death never converged")
	}
	if err := fl.sys.Net.Restart(victim); err != nil {
		t.Fatal(err)
	}
	ticks := fl.ticksUntil(40, func(m *Mesh) bool { return aliveCount(m) == n })
	if ticks < 0 {
		for i, m := range fl.meshes {
			t.Logf("mesh %d: %+v", i, m.Members())
		}
		t.Fatal("restarted site never rejoined")
	}
	t.Logf("rejoin convergence: %d ticks", ticks)
}

// A graceful Leave must remove the member without waiting out a suspicion
// timeout, and Left must be final: late alive-gossip at the old incarnation
// cannot resurrect a departed member.
func TestMeshLeave(t *testing.T) {
	const n = 5
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	leaver := fl.meshes[4]
	leaver.Leave(context.Background())
	ticks := fl.ticksUntil(20, func(m *Mesh) bool {
		if m == leaver {
			return true
		}
		return aliveCount(m) == n-1
	})
	if ticks < 0 {
		t.Fatal("leave never converged")
	}
	for _, m := range fl.meshes[:4] {
		for _, e := range m.Members() {
			if e.Site == leaver.Site().ID() && e.State != StateLeft {
				t.Fatalf("mesh %s holds leaver as %s, want left", m.Site().ID(), e.State)
			}
		}
	}
}

// The self entry must survive tombstone retention: a mesh that has Left but
// keeps ticking (tacomad calls Leave while the ticker is live) or keeps
// answering frames must not evict itself — Tick and frame building
// dereference the self entry unconditionally.
func TestMeshLeaveThenTickNoSelfEviction(t *testing.T) {
	const retention = 8
	fl := newFleet(t, 2, Config{DeadRetentionTicks: retention})
	fl.join(t)
	if ticks := fl.ticksUntil(8, func(m *Mesh) bool { return aliveCount(m) == 2 }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	m := fl.meshes[0]
	// Age the mesh past the retention window, then leave mid-life.
	for i := 0; i < retention+2; i++ {
		fl.tickAll()
	}
	m.Leave(context.Background())
	// Keep ticking well past retention: before the fix the self entry was
	// deleted on the first expiry pass after Leave and the next Tick
	// panicked on a nil member.
	for i := 0; i < 2*retention; i++ {
		m.Tick(context.Background())
	}
	found := false
	for _, e := range m.Members() {
		if e.Site == m.Site().ID() {
			found = true
			if e.State != StateLeft {
				t.Fatalf("self state after Leave = %s, want left", e.State)
			}
		}
	}
	if !found {
		t.Fatal("self entry evicted after Leave + retention ticks")
	}
	// Incoming gossip frames must still be answerable (buildFrameLocked
	// reads the self entry too).
	ping := AppendFrame(nil, &Frame{Type: TypePing})
	if _, err := m.handle(fl.meshes[1].Site().ID(), KindGossip, ping); err != nil {
		t.Fatalf("ping after Leave: %v", err)
	}
}

// When more updates are pending than fit in one frame, the least-transmitted
// ones go out first — the queue front must not monopolize the piggyback
// window while fresher churn starves behind it.
func TestMeshPiggybackFewestTransmissionsFirst(t *testing.T) {
	sys := core.NewSystem(1, core.SystemConfig{})
	m := New(sys.SiteAt(0), Config{PiggybackMax: 2})
	m.mu.Lock()
	m.queue = []update{
		{e: Entry{Site: "old-a", State: StateAlive}, left: 1},
		{e: Entry{Site: "old-b", State: StateAlive}, left: 1},
		{e: Entry{Site: "new-c", State: StateDead, Inc: 1}, left: 5},
		{e: Entry{Site: "new-d", State: StateSuspect}, left: 5},
	}
	f := m.buildFrameLocked(TypePing, "")
	m.mu.Unlock()
	got := map[vnet.SiteID]bool{}
	for _, e := range f.Entries[1:] { // entry 0 is self
		got[e.Site] = true
	}
	if !got["new-c"] || !got["new-d"] {
		t.Fatalf("frame carried %v, want the least-transmitted updates new-c and new-d", got)
	}
}

// One partitioned link must not produce a failure verdict: the indirect
// probe path keeps a member alive as long as anyone can reach it.
func TestMeshIndirectProbeSurvivesPartition(t *testing.T) {
	const n = 4
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	fl.sys.Net.Partition(fl.sys.SiteAt(0).ID(), fl.sys.SiteAt(1).ID())
	for i := 0; i < 20; i++ {
		fl.tickAll()
	}
	for i, m := range fl.meshes {
		if got := aliveCount(m); got != n {
			t.Fatalf("mesh %d shrank to %d members under a single cut link: %v", i, got, m.Members())
		}
	}
}

// recordingSink captures the load stream for assertions.
type recordingSink struct {
	mu         sync.Mutex
	registered map[string]bool
	loads      map[string]int64
	seqs       map[string]int64
	dropped    map[string]bool
}

func newRecordingSink() *recordingSink {
	return &recordingSink{
		registered: map[string]bool{},
		loads:      map[string]int64{},
		seqs:       map[string]int64{},
		dropped:    map[string]bool{},
	}
}

func (r *recordingSink) Register(service, site, agent string, capacity int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registered[site] = true
	delete(r.dropped, site)
}

func (r *recordingSink) Report(site string, load, seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq < r.seqs[site] {
		panic(fmt.Sprintf("mesh fed stale load report for %s: seq %d after %d", site, seq, r.seqs[site]))
	}
	r.seqs[site] = seq
	r.loads[site] = load
}

func (r *recordingSink) Drop(site string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropped[site] = true
}

func TestMeshFeedLoads(t *testing.T) {
	const n = 6
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	sink := newRecordingSink()
	fl.meshes[0].FeedLoads(sink, "tacl", "ag_tacl", 8)
	sink.mu.Lock()
	regs := len(sink.registered)
	sink.mu.Unlock()
	if regs != n {
		t.Fatalf("FeedLoads registered %d sites, want %d", regs, n)
	}
	for i := 0; i < 10; i++ {
		fl.tickAll()
	}
	victim := fl.sys.SiteAt(5).ID()
	if err := fl.sys.Net.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if ticks := fl.ticksUntil(40, func(m *Mesh) bool { return aliveCount(m) == n-1 }); ticks < 0 {
		t.Fatal("death never converged")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if !sink.dropped[string(victim)] {
		t.Fatalf("sink never saw Drop(%s); dropped=%v", victim, sink.dropped)
	}
	if sink.seqs[string(fl.sys.SiteAt(1).ID())] == 0 {
		t.Fatal("no gossiped load reports reached the sink")
	}
}

func TestMeshPlacePicksLeastLoaded(t *testing.T) {
	sys := core.NewSystem(1, core.SystemConfig{})
	m := New(sys.SiteAt(0), Config{})
	m.mergeEntries([]Entry{
		{Site: "busy", State: StateAlive, LoadSeq: 5, Load: 90, Agents: 10},
		{Site: "idle", State: StateAlive, LoadSeq: 5, Load: 1, Agents: 10},
		{Site: "dead", State: StateDead, Inc: 1, LoadSeq: 5, Load: 0, Agents: 0},
	})
	// Self has load 0 but also 0 agents; "idle" has load 1. Self wins on
	// load; kill self's claim by merging a high self... self can't be merged.
	// Instead assert the dead site is never chosen and ordering is by load.
	got, ok := m.Place()
	if !ok {
		t.Fatal("no placement")
	}
	if got == "dead" || got == "busy" {
		t.Fatalf("Place() = %q", got)
	}
}

// The stale-report pin at the mesh layer: a load report with an older
// LoadSeq must never overwrite a fresher one, whatever gossip path it rode.
func TestMeshStaleLoadReportIgnored(t *testing.T) {
	sys := core.NewSystem(1, core.SystemConfig{})
	m := New(sys.SiteAt(0), Config{})
	m.mergeEntries([]Entry{{Site: "peer", State: StateAlive, LoadSeq: 10, Load: 7, Agents: 3}})
	m.mergeEntries([]Entry{{Site: "peer", State: StateAlive, LoadSeq: 4, Load: 99, Agents: 99}})
	for _, e := range m.Members() {
		if e.Site == "peer" && (e.Load != 7 || e.LoadSeq != 10) {
			t.Fatalf("stale report overwrote fresh one: %+v", e)
		}
	}
}

// Gossip overhead must stay bounded: PiggybackMax caps entries per frame,
// so steady-state per-tick traffic is O(members probed), not O(fleet²).
func TestMeshGossipBytesBounded(t *testing.T) {
	const n = 10
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	fl.sys.Net.ResetStats()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		fl.tickAll()
	}
	bytes := fl.sys.Net.KindBytes(KindGossip)
	perSitePerTick := bytes / (n * rounds)
	t.Logf("steady-state gossip: %d bytes total, %d bytes/site/tick", bytes, perSitePerTick)
	// One ping + ack with a PiggybackMax window is a few hundred bytes; 4KiB
	// per site per protocol period is an order-of-magnitude ceiling.
	if perSitePerTick > 4096 {
		t.Fatalf("gossip overhead %d bytes/site/tick exceeds bound", perSitePerTick)
	}
}

// End-to-end placement: a meet issued at the wrong site must reach the
// ring owner in exactly one forwarded hop, and a miss at the owner must
// not bounce again.
func TestMeshForwardedMeetOneHop(t *testing.T) {
	const n = 4
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}

	const agentName = "ag_whereami"
	owner, ok := fl.meshes[0].Resolve(agentName)
	if !ok {
		t.Fatal("no owner")
	}
	// Register the agent only at its ring owner, as the placement layer
	// would; it records where it actually ran.
	fl.sys.Site(owner).Register(agentName, core.AgentFunc(
		func(mc *core.MeetContext, bc *folder.Briefcase) error {
			bc.PutString("RAN_AT", string(mc.Site.ID()))
			return nil
		}))

	// Find a site that is not the owner and meet there.
	var wrong *core.Site
	for i := 0; i < n; i++ {
		if fl.sys.SiteAt(i).ID() != owner {
			wrong = fl.sys.SiteAt(i)
			break
		}
	}
	bc := folder.NewBriefcase()
	if err := wrong.Meet(nil, agentName, bc); err != nil {
		t.Fatalf("forwarded meet failed: %v", err)
	}
	ranAt, err := bc.GetString("RAN_AT")
	if err != nil || ranAt != string(owner) {
		t.Fatalf("meet ran at %q (err %v), want owner %q", ranAt, err, owner)
	}
	if bc.Has(core.FwdFolder) {
		t.Fatal("forward marker leaked into the result briefcase")
	}

	// An agent registered nowhere: the wrong site forwards once, the owner
	// misses, and the forward marker stops a second hop — the error is
	// ErrNoAgent, not a loop or a depth blowout.
	if err := wrong.Meet(nil, "ag_nowhere", folder.NewBriefcase()); !errors.Is(err, core.ErrNoAgent) {
		t.Fatalf("meet of unplaced agent: %v, want ErrNoAgent", err)
	}
}

// A meet addressed to a *parked* agent from the wrong site forwards one
// hop to the ring owner and is delivered there: briefcase deposited in the
// pending folder, resume enqueued on the owner's scheduler — the sender
// never blocks on the parked agent actually running.
func TestMeshForwardedMeetToParkedAgent(t *testing.T) {
	const n = 4
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}

	const agentName = "ag_resident"
	ownerID, ok := fl.meshes[0].Resolve(agentName)
	if !ok {
		t.Fatal("no owner")
	}
	owner := fl.sys.Site(ownerID)
	// Park the resident at its ring owner, where forwarded meets land.
	script := `
		if {![bc_has PARK_HOP]} {
			park ag_resident
		}
		cab_append RESUMED [bc_get PARK_HOP 0]
	`
	if _, err := core.RunScript(context.Background(), owner, script, nil); err != nil {
		t.Fatal(err)
	}
	if !owner.IsParked(agentName) {
		t.Fatal("resident not parked at owner")
	}

	var wrong *core.Site
	for i := 0; i < n; i++ {
		if fl.sys.SiteAt(i).ID() != ownerID {
			wrong = fl.sys.SiteAt(i)
			break
		}
	}
	if err := wrong.Meet(nil, agentName, folder.NewBriefcase()); err != nil {
		t.Fatalf("forwarded meet to parked agent failed: %v", err)
	}
	fl.sys.Wait() // the enqueued resume is tracked scheduler work
	resumed := owner.Cabinet().Snapshot("RESUMED").Strings()
	if len(resumed) != 1 {
		t.Fatalf("RESUMED = %v, want one wakeup at the owner", resumed)
	}
	if owner.IsParked(agentName) {
		t.Fatal("resident still parked after its script completed")
	}
	if owner.Cabinet().FolderLen(core.ParkedFolder(agentName)) != 0 {
		t.Fatal("spent continuation not retired from the cabinet")
	}
}

// TestMeshFleetGoroutinesFlat is the fleet-scale goroutine invariant CI
// checks: parking a large resident population across a formed mesh must
// not grow the process goroutine count — parked agents are heap state, not
// goroutines, no matter how many sites host them.
func TestMeshFleetGoroutinesFlat(t *testing.T) {
	const n = 4
	residents := 20000
	if testing.Short() {
		residents = 1000
	}
	fl := newFleet(t, n, Config{})
	fl.join(t)
	if ticks := fl.ticksUntil(4*n, func(m *Mesh) bool { return aliveCount(m) == n }); ticks < 0 {
		t.Fatal("fleet never formed")
	}
	fl.sys.Wait()
	before := runtime.NumGoroutine()
	bc := folder.NewBriefcase()
	bc.PutString(folder.CodeFolder, "cab_append WOKE x")
	for i := 0; i < residents; i++ {
		name := fmt.Sprintf("resident-%d", i)
		owner, ok := fl.meshes[0].Resolve(name)
		if !ok {
			t.Fatal("no owner")
		}
		if err := fl.sys.Site(owner).Park(name, "", bc); err != nil {
			t.Fatal(err)
		}
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("parking %d residents across %d sites grew goroutines %d -> %d",
			residents, n, before, after)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += fl.sys.SiteAt(i).ParkedCount()
	}
	if total != residents {
		t.Fatalf("fleet parked %d residents, want %d", total, residents)
	}
}

// Start/Stop drive Ticks in real time without racing explicit ones.
func TestMeshStartStop(t *testing.T) {
	fl := newFleet(t, 3, Config{ProbeInterval: 2 * time.Millisecond})
	fl.join(t)
	for _, m := range fl.meshes {
		m.Start()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		done := true
		for _, m := range fl.meshes {
			if aliveCount(m) != 3 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("real-time ticking never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, m := range fl.meshes {
		m.Stop()
		m.Stop() // idempotent
	}
}
