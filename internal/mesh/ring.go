// Package mesh turns a set of independent TACOMA sites into one addressable
// fleet — the paper's "StormCast across Norway" deployment shape. It has two
// layers:
//
//   - a SWIM-style gossip membership protocol (mesh.go) running over the
//     sites' existing vnet endpoints: join/leave/suspect/dead detection with
//     bounded per-period fanout, piggybacked membership updates, and
//     piggybacked load reports, so sites discover each other and each
//     other's capacity without static configuration;
//
//   - a consistent-hash placement ring (this file) mapping agent names to
//     sites deterministically: every member that has converged on the same
//     alive set resolves every agent to the same owner, which is what lets
//     the kernel's Resolve/forward hook redirect a misplaced meet in exactly
//     one hop.
//
// The broker's matchmaker consumes the mesh's load reports (FeedLoads), so
// new launches are directed at underloaded sites while the ring serves
// steady-state lookups.
package mesh

import (
	"sort"

	"repro/internal/vnet"
)

// DefaultVNodes is the number of ring points each site contributes. More
// virtual nodes smooth the key distribution between sites at the cost of a
// larger (still tiny — 16 bytes/point) sorted array; 64 keeps the max/min
// ownership spread under ~1.3× for fleets of 10–100 sites.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a site.
type ringPoint struct {
	hash uint64
	site vnet.SiteID
}

// Ring is an immutable consistent-hash ring. Build it with BuildRing;
// lookups are lock-free reads of the sorted point array, so placement
// resolution can sit on the meet path's miss branch without a mutex. Sites
// hold the current ring in an atomic pointer and swap whole rings on
// membership change.
type Ring struct {
	points []ringPoint
	sites  []vnet.SiteID
}

// fnv64 is FNV-1a over a string: deterministic across processes and
// architectures, which is what ring agreement between independent sites
// requires (a keyed or per-process hash would give every site a private
// ring).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// mix is a 64-bit finalizer (splitmix64) applied to vnode and rendezvous
// hashes: FNV alone clusters sequential inputs ("site-1#0", "site-1#1", …)
// on the circle, and clustering is exactly what virtual nodes exist to
// avoid.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// vnodeHash positions virtual node i of a site on the circle.
func vnodeHash(site vnet.SiteID, i int) uint64 {
	return mix(fnv64(string(site)) + uint64(i)*0x9e3779b97f4a7c15)
}

// rendezvousScore ranks a site for a key; the highest score wins a tie
// between ring points that landed on the same hash. Two sites can share a
// point only by 64-bit collision, but the tiebreak must still be
// deterministic everywhere or two converged rings could disagree on exactly
// the agents that hash there.
func rendezvousScore(key uint64, site vnet.SiteID) uint64 {
	return mix(key ^ fnv64(string(site)))
}

// BuildRing constructs a ring over the given sites with vnodes virtual
// nodes per site (DefaultVNodes if vnodes <= 0). The site list may be in
// any order; the resulting ring depends only on the set.
func BuildRing(sites []vnet.SiteID, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(sites)*vnodes),
		sites:  append([]vnet.SiteID(nil), sites...),
	}
	sort.Slice(r.sites, func(i, j int) bool { return r.sites[i] < r.sites[j] })
	for _, s := range r.sites {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(s, i), site: s})
		}
	}
	// Sort by (hash, site): equal-hash runs are deterministically ordered,
	// so Owner's scan over a tied run visits the same candidates everywhere.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].site < r.points[j].site
	})
	return r
}

// Len reports the number of member sites.
func (r *Ring) Len() int { return len(r.sites) }

// Sites returns the member sites in sorted order. The caller must not
// mutate the returned slice.
func (r *Ring) Sites() []vnet.SiteID { return r.sites }

// Owner maps an agent name to its owning site: the site of the first ring
// point at or clockwise after the key's hash. When several points share
// that hash (a 64-bit collision between different sites), the rendezvous
// score breaks the tie deterministically. An empty ring owns nothing.
func (r *Ring) Owner(agent string) (vnet.SiteID, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	key := mix(fnv64(agent))
	// First point with hash >= key, wrapping to 0.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	p := r.points[i]
	if i+1 < len(r.points) && r.points[i+1].hash == p.hash {
		// Tied run: rendezvous-hash the candidates.
		best, bestScore := p.site, rendezvousScore(key, p.site)
		for j := i + 1; j < len(r.points) && r.points[j].hash == p.hash; j++ {
			if s := rendezvousScore(key, r.points[j].site); s > bestScore {
				best, bestScore = r.points[j].site, s
			}
		}
		return best, true
	}
	return p.site, true
}
