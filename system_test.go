package tacoma

// System-level integration test: every subsystem of the reproduction
// cooperating in one scenario, the "weather marketplace":
//
//  1. sensor sites publish a forecast service and register it with a
//     broker (scheduling, §4);
//  2. a client asks the broker for the least-loaded provider;
//  3. the client buys the forecast with electronic cash — bills validated
//     by the bank's validation agent, actions notarized (§3);
//  4. a guarded collector computes the forecast by roaming the sensor
//     sites while one of them crashes and restarts (rear guards, §5;
//     StormCast, §6);
//  5. the result is mailed to the customer as an agent-structured message
//     with a delivery receipt (§6).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cash"
	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/mail"
	"repro/internal/rearguard"
	"repro/internal/stormcast"
	"repro/internal/vnet"
)

func TestWeatherMarketplaceEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Topology: site-0 = bank+broker ("town hall"), site-1 = customer,
	// sites 2..10 = a 3×3 sensor field.
	const w, h = 3, 3
	sys := core.NewSystem(2+w*h, core.SystemConfig{Seed: 1995, CallTimeout: 25 * time.Millisecond})
	defer sys.Wait()
	town := sys.SiteAt(0)
	home := sys.SiteAt(1)

	// --- cash and scheduling infrastructure ---
	bank, err := cash.NewBank(town)
	if err != nil {
		t.Fatal(err)
	}
	bkr := broker.Install(town)
	office := broker.InstallTicketAgent(town)

	// --- sensor field + rear-guard managers + mailboxes everywhere ---
	model := stormcast.DefaultModel(w, h, 1995)
	var sensorSites []vnet.SiteID
	managers := make(map[vnet.SiteID]*rearguard.Manager)
	for i := 0; i < sys.Len(); i++ {
		site := sys.SiteAt(i)
		m := rearguard.Install(site)
		m.Interval = 8 * time.Millisecond
		managers[site.ID()] = m
		mail.InstallMailbox(site)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			site := sys.SiteAt(2 + y*w + x)
			stormcast.InstallSensor(site, model, x, y)
			sensorSites = append(sensorSites, site.ID())
			bkr.Register("forecast", string(site.ID()), stormcast.AgSensor, 1)
			broker.NewMonitor(site)
		}
	}

	// --- 1+2: the customer asks the broker where forecasts are sold ---
	placeReq := folder.NewBriefcase()
	placeReq.PutString(broker.OpFolder, "lookup")
	placeReq.PutString(broker.ServiceFolder, "forecast")
	if err := home.RemoteMeet(ctx, town.ID(), broker.AgBroker, placeReq); err != nil {
		t.Fatal(err)
	}
	providers, err := placeReq.Folder(broker.ProvidersFolder)
	if err != nil || providers.Len() != w*h {
		t.Fatalf("broker knows %v providers, err=%v", providers, err)
	}

	// --- 3: purchase (honest) with a ticket granting the computation ---
	customer := cash.NewParty(bank, "customer")
	weatherco := cash.NewParty(bank, "weatherco")
	funds, err := bank.Mint.IssueMany(50, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	customer.Wallet.Add(funds...)
	out, err := cash.Purchase(ctx, bank, "forecast-order-1", "full-grid forecast", 75,
		customer, weatherco, cash.HonestRun)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Paid || !out.Delivered || out.Audited {
		t.Fatalf("purchase outcome: %+v", out)
	}
	if weatherco.Wallet.Balance() != 75 || customer.Wallet.Balance() != 25 {
		t.Fatalf("balances: seller=%d customer=%d", weatherco.Wallet.Balance(), customer.Wallet.Balance())
	}
	ticket, err := office.Issue("forecast", 1)
	if err != nil {
		t.Fatal(err)
	}

	// --- 4: guarded roaming computation over the sensor field, with a
	// crash of one sensor site mid-journey ---
	const tstep, window = 12, 8
	victim := sensorSites[4]
	go func() {
		time.Sleep(15 * time.Millisecond)
		sys.Net.Crash(victim)
		time.Sleep(60 * time.Millisecond)
		sys.Net.Restart(victim)
	}()

	payload := folder.NewBriefcase()
	payload.PutString(stormcast.OpFolder, "summary")
	payload.PutString(stormcast.TimeFolder, fmt.Sprint(tstep))
	payload.PutString(stormcast.WindowFolder, fmt.Sprint(window))
	ch, err := managers[home.ID()].Launch(ctx, rearguard.Config{
		ID: "forecast-order-1", Task: stormcast.AgSensor,
		Itinerary: sensorSites, Guards: true,
	}, payload)
	if err != nil {
		t.Fatal(err)
	}
	res := rearguard.Wait(ch, 10*time.Second)
	if !res.Completed {
		t.Fatal("guarded forecast computation did not complete")
	}
	summaries, err := res.Briefcase.Folder(stormcast.SummaryFolder)
	if err != nil || summaries.Len() < w*h-1 {
		t.Fatalf("summaries: %v (err=%v, skipped=%v)", summaries, err, res.Skipped)
	}

	// The expert turns carried summaries into the forecast.
	var parsed []stormcast.Summary
	for _, raw := range summaries.Strings() {
		s, err := stormcast.ParseSummary(raw)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, s)
	}
	forecast := stormcast.DefaultExpert().Predict(tstep, parsed)
	if !forecast.Storm {
		t.Fatalf("storm at t=%d not predicted from %d summaries", tstep, len(parsed))
	}

	// The service punches the customer's ticket exactly once.
	if err := office.Punch(ticket); err != nil {
		t.Fatal(err)
	}
	if err := office.Punch(ticket); err == nil {
		t.Fatal("single-use ticket punched twice")
	}

	// --- 5: mail the forecast to the customer, message as agent ---
	msg := mail.Message{
		From:    "weatherco@" + string(town.ID()),
		To:      "customer@" + string(home.ID()),
		Subject: "your forecast",
		Body:    fmt.Sprintf("storm=%v stormy-sites=%d", forecast.Storm, len(forecast.Stormy)),
	}
	if err := mail.Send(ctx, town, msg, true); err != nil {
		t.Fatal(err)
	}
	headers, err := mail.List(ctx, home, "customer", home.ID())
	if err != nil || len(headers) != 1 {
		t.Fatalf("customer mailbox: %v, %v", headers, err)
	}
	delivered, err := mail.Fetch(ctx, home, "customer", home.ID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if delivered.Body != msg.Body {
		t.Fatalf("mail body = %q", delivered.Body)
	}
	if len(mail.Receipts(town, "weatherco")) != 1 {
		t.Fatal("sender got no delivery receipt")
	}

	// Money supply conserved through the whole scenario.
	if bank.Mint.Outstanding() != bank.Mint.Issued() {
		t.Fatalf("money supply drifted: issued=%d outstanding=%d",
			bank.Mint.Issued(), bank.Mint.Outstanding())
	}
}

// TestMeteredRoamingAgent combines cycle billing with migration: the agent
// pays for cycles at a metered site and is aborted when its wallet empties.
func TestMeteredRoamingAgent(t *testing.T) {
	cb := cash.NewCycleBilling(20)
	sys := core.NewSystem(2, core.SystemConfig{
		Seed: 2,
		Site: core.SiteConfig{StepHookFactory: cb.Factory},
	})
	defer sys.Wait()

	mint := cash.NewMint()
	wallet := cash.NewWallet()
	bills, err := mint.IssueMany(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wallet.Add(bills...)
	// The roaming agent arrives via rexec, so billing keys on the rexec
	// initiator identity at the destination.
	cb.Fund("rexec@site-0", wallet)

	_, err = core.RunScript(context.Background(), sys.SiteAt(0), `
		if {[host] eq "site-0"} { jump site-1 }
		set i 0
		while {1} { incr i }
	`, nil)
	if err == nil {
		t.Fatal("runaway metered agent was not aborted")
	}
	if wallet.Balance() != 0 {
		t.Fatalf("wallet balance = %d, want 0", wallet.Balance())
	}
	if cb.Earned() != 3 {
		t.Fatalf("treasury earned %d, want 3", cb.Earned())
	}
}
