// Command tacsh runs a TacL agent script, either on a local simulated
// system of -sites sites (default) or injected into a running tacomad
// (with -remote and -peer flags).
//
// Local simulation:
//
//	tacsh -sites 4 -script roam.tacl
//	echo 'bc_push RESULT [expr {6*7}]' | tacsh
//
// Against daemons:
//
//	tacsh -remote site-0 -peer site-0=127.0.0.1:7100 -script hello.tacl
//
// Guarded deployments: -auth-secret speaks the TCP handshake of daemons
// started with the same secret, and -sign name=hexkey signs the agent's
// briefcase so firewall daemons that enrolled the same key admit it
// (-home names the site billing records should return to).
//
// The final briefcase is printed folder by folder.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/guard"
	"repro/internal/vnet"
)

func main() {
	log.SetFlags(0)
	sites := flag.Int("sites", 3, "number of simulated sites (local mode)")
	script := flag.String("script", "", "script file ('-' or empty reads stdin)")
	remote := flag.String("remote", "", "inject at this remote site instead of simulating")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline")
	authSecret := flag.String("auth-secret", "", "hex-encoded shared TCP authentication secret (remote mode)")
	sign := flag.String("sign", "", "principal=hexkey: sign the briefcase before injecting (remote mode)")
	home := flag.String("home", "", "HOME site recorded in the signed briefcase (billing return address)")
	var peers peerList
	flag.Var(&peers, "peer", "peer site as name=host:port (repeatable, remote mode)")
	flag.Parse()

	src, err := readScript(*script)
	if err != nil {
		log.Fatalf("tacsh: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var bc *folder.Briefcase
	if *remote == "" {
		bc, err = runLocal(ctx, *sites, src)
	} else {
		bc, err = runRemote(ctx, *remote, peers, src, *authSecret, *sign, *home)
	}
	if err != nil {
		log.Fatalf("tacsh: %v", err)
	}
	printBriefcase(bc)
}

func readScript(path string) (string, error) {
	if path == "" || path == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

func runLocal(ctx context.Context, n int, src string) (*folder.Briefcase, error) {
	if n < 1 {
		return nil, fmt.Errorf("need at least one site")
	}
	sys := core.NewSystem(n, core.SystemConfig{})
	sys.FullMesh()
	defer sys.Wait()
	return core.RunScript(ctx, sys.SiteAt(0), src, nil)
}

func runRemote(ctx context.Context, at string, peers peerList, src, authSecret, sign, home string) (*folder.Briefcase, error) {
	ep, err := vnet.NewTCPEndpoint("tacsh-client", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ep.Close()
	if authSecret != "" {
		key, err := hex.DecodeString(authSecret)
		if err != nil {
			return nil, fmt.Errorf("bad -auth-secret: %w", err)
		}
		ep.SetAuthKey(key)
	}
	for _, p := range peers {
		name, addr, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("peer must be name=host:port, got %q", p)
		}
		ep.AddPeer(vnet.SiteID(name), addr)
	}
	client := core.NewSite(ep, core.SiteConfig{})
	bc := folder.NewBriefcase()
	if sign != "" {
		principal, hexKey, ok := strings.Cut(sign, "=")
		if !ok {
			return nil, fmt.Errorf("-sign must be principal=hexkey, got %q", sign)
		}
		key, err := hex.DecodeString(hexKey)
		if err != nil {
			return nil, fmt.Errorf("bad -sign key for %q: %w", principal, err)
		}
		keys := guard.NewKeyring()
		keys.Add(principal, key)
		if bc, err = guard.SignedScript(keys, principal, home, src, bc); err != nil {
			return nil, err
		}
	} else {
		bc.Ensure(folder.CodeFolder).PushString(src)
	}
	if err := client.RemoteMeet(ctx, vnet.SiteID(at), core.AgTacl, bc); err != nil {
		return nil, err
	}
	return bc, nil
}

func printBriefcase(bc *folder.Briefcase) {
	for _, name := range bc.Names() {
		f, err := bc.Folder(name)
		if err != nil {
			continue
		}
		fmt.Printf("%s (%d):\n", name, f.Len())
		for _, e := range f.Strings() {
			fmt.Printf("  %s\n", strings.ReplaceAll(e, "\n", "\n  "))
		}
	}
}

type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}
