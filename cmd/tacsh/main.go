// Command tacsh runs a TacL agent script, either on a local simulated
// system of -sites sites (default) or injected into a running tacomad
// (with -remote and -peer flags).
//
// Local simulation:
//
//	tacsh -sites 4 -script roam.tacl
//	echo 'bc_push RESULT [expr {6*7}]' | tacsh
//
// Against daemons:
//
//	tacsh -remote site-0 -peer site-0=127.0.0.1:7100 -script hello.tacl
//
// The final briefcase is printed folder by folder.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/vnet"
)

func main() {
	log.SetFlags(0)
	sites := flag.Int("sites", 3, "number of simulated sites (local mode)")
	script := flag.String("script", "", "script file ('-' or empty reads stdin)")
	remote := flag.String("remote", "", "inject at this remote site instead of simulating")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline")
	var peers peerList
	flag.Var(&peers, "peer", "peer site as name=host:port (repeatable, remote mode)")
	flag.Parse()

	src, err := readScript(*script)
	if err != nil {
		log.Fatalf("tacsh: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var bc *folder.Briefcase
	if *remote == "" {
		bc, err = runLocal(ctx, *sites, src)
	} else {
		bc, err = runRemote(ctx, *remote, peers, src)
	}
	if err != nil {
		log.Fatalf("tacsh: %v", err)
	}
	printBriefcase(bc)
}

func readScript(path string) (string, error) {
	if path == "" || path == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

func runLocal(ctx context.Context, n int, src string) (*folder.Briefcase, error) {
	if n < 1 {
		return nil, fmt.Errorf("need at least one site")
	}
	sys := core.NewSystem(n, core.SystemConfig{})
	sys.FullMesh()
	defer sys.Wait()
	return core.RunScript(ctx, sys.SiteAt(0), src, nil)
}

func runRemote(ctx context.Context, at string, peers peerList, src string) (*folder.Briefcase, error) {
	ep, err := vnet.NewTCPEndpoint("tacsh-client", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ep.Close()
	for _, p := range peers {
		name, addr, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("peer must be name=host:port, got %q", p)
		}
		ep.AddPeer(vnet.SiteID(name), addr)
	}
	client := core.NewSite(ep, core.SiteConfig{})
	bc := folder.NewBriefcase()
	bc.Ensure(folder.CodeFolder).PushString(src)
	if err := client.RemoteMeet(ctx, vnet.SiteID(at), core.AgTacl, bc); err != nil {
		return nil, err
	}
	return bc, nil
}

func printBriefcase(bc *folder.Briefcase) {
	for _, name := range bc.Names() {
		f, err := bc.Folder(name)
		if err != nil {
			continue
		}
		fmt.Printf("%s (%d):\n", name, f.Len())
		for _, e := range f.Strings() {
			fmt.Printf("  %s\n", strings.ReplaceAll(e, "\n", "\n  "))
		}
	}
}

type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}
