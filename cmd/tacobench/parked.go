package main

import (
	"fmt"
	"strconv"

	"repro/internal/sched"
)

// The parked lane measures the zero-goroutine scheduler's wakeup path:
// with a 100k-strong parked population resident in the scheduler's tables,
// how long from a wakeup (what a meet delivery or mail deposit does) to
// the parked agent's resumer running and the agent being back at rest?
// That window — wake, run-queue dispatch, worker handoff, re-park — is
// the per-message overhead every parked resident pays on every piece of
// work, so it is gated in CI next to the meet lanes. The cost of the full
// TacL continuation resume on top of it (briefcase decode, interpreter
// startup) is the script lane's cost and is exercised functionally by the
// internal/core park tests.

// nopResumer is the idle population: parked entries that never wake.
type nopResumer struct{}

func (nopResumer) Resume(string) {}

// echoResumer is one worker's parked agent: on resume it re-parks itself
// (so the next wakeup finds it parked, as a re-parking TacL script would)
// and then signals the measuring client.
type echoResumer struct {
	sch  *sched.Scheduler
	done chan struct{}
}

func (r *echoResumer) Resume(key string) {
	r.sch.Park(key, "", r)
	r.done <- struct{}{}
}

// parkedWorkload: each op wakes one parked agent and completes when the
// resumed agent has run and re-parked — the wakeup-to-meet latency — on a
// scheduler also carrying `parked` idle residents.
func parkedWorkload(parked, concurrency, payload int) (workload, error) {
	sch := sched.New(0)
	idle := nopResumer{}
	for i := 0; i < parked; i++ {
		sch.Park("resident-"+strconv.Itoa(i), "", idle)
	}
	echoes := make([]*echoResumer, concurrency)
	keys := make([]string, concurrency)
	for i := range echoes {
		echoes[i] = &echoResumer{sch: sch, done: make(chan struct{}, 1)}
		keys[i] = "pw" + strconv.Itoa(i)
		sch.Park(keys[i], "", echoes[i])
	}
	if got := sch.ParkedCount(); got != parked+concurrency {
		return workload{}, fmt.Errorf("parked %d agents, want %d", got, parked+concurrency)
	}
	return workload{
		op: func(worker int) error {
			if !sch.Wake(keys[worker]) {
				return fmt.Errorf("worker %d: wake found nothing parked", worker)
			}
			<-echoes[worker].done
			return nil
		},
		cleanup: func() { sch.Quiesce() },
	}, nil
}
