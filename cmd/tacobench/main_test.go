package main

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// Every workload must run and produce a sane measurement; this is what keeps
// the CI bench job from discovering a broken generator only on main.
func TestWorkloadsSmoke(t *testing.T) {
	for _, mode := range []string{"local", "cabinet", "remote", "guarded", "script", "hop", "durable", "durable-naive", "mixed", "parked", "fleet", "fleet-lookup"} {
		t.Run(mode, func(t *testing.T) {
			res, err := runMode(mode, benchOpts{
				concurrency: 2, duration: 30 * time.Millisecond, payload: 16,
				fleetSites: 4, fleetAgents: 100, parkedPop: 500,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Name != mode {
				t.Errorf("name = %q, want %q", res.Name, mode)
			}
			if res.Ops <= 0 || res.OpsPerSec <= 0 {
				t.Errorf("no throughput recorded: %+v", res)
			}
			if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
				t.Errorf("implausible percentiles: p50=%d p99=%d", res.P50Ns, res.P99Ns)
			}
		})
	}
}

// The committed heavy fixture must keep running through -script-src: it is
// the proc-and-cabinet-heavy alternative workload for the script lane.
func TestScriptSrcFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/heavy.tacl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runMode("script", benchOpts{
		concurrency: 2, duration: 30 * time.Millisecond, payload: 16,
		scriptSrc: string(src),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 {
		t.Errorf("no throughput recorded: %+v", res)
	}
}

// fleet-converge bypasses measure() — samples are simulated durations, not
// op latencies — so it gets its own smoke: a short run must still complete
// its minimum trials and report sane simulated percentiles.
func TestFleetConvergeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/rejoin trials in -short")
	}
	res, err := runMode("fleet-converge", benchOpts{fleetSites: 4, duration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 3 {
		t.Errorf("only %d trials, want >= 3", res.Ops)
	}
	if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
		t.Errorf("implausible percentiles: p50=%d p99=%d", res.P50Ns, res.P99Ns)
	}
}

func TestUnknownModeRefused(t *testing.T) {
	if _, err := runMode("warp-drive", benchOpts{concurrency: 1, duration: 10 * time.Millisecond, payload: 16}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestReportRoundTrips(t *testing.T) {
	res, err := runMode("local", benchOpts{concurrency: 1, duration: 20 * time.Millisecond, payload: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{Schema: ReportSchema, Go: "go-test", GOMAXPROCS: 1, Benchmarks: []Result{res}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Benchmarks) != 1 || back.Benchmarks[0].Name != "local" {
		t.Fatalf("round trip mangled report: %+v", back)
	}
}
