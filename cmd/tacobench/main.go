// Command tacobench is the meet-path load generator: it drives local,
// cabinet-backed, remote (TCP loopback), guarded, parked-agent wakeup, and
// mixed meet workloads at a configurable concurrency and emits a
// machine-readable BENCH_meet.json with throughput, latency percentiles,
// and allocation counts per workload.
//
// CI runs it on every push and compares the result against the committed
// baseline with scripts/benchdiff.go, failing the build when meet throughput
// regresses by more than the threshold (see README.md § Performance).
//
// Usage:
//
//	tacobench [-modes local,cabinet,remote,guarded,script,mixed] [-concurrency N]
//	          [-duration 2s] [-payload 64] [-out BENCH_meet.json] [-v]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	tacoma "repro"
	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/vnet"
)

// Result is the measurement of one workload.
type Result struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	DurationNs  int64   `json:"duration_ns"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is the BENCH_meet.json document.
type Report struct {
	Schema     string   `json:"schema"`
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// ReportSchema identifies the BENCH_meet.json format version.
const ReportSchema = "tacoma-bench/v1"

func main() {
	// All failure paths return through run() rather than os.Exit-ing in
	// place, so the profile-finalizing defers always fire and a failed CI
	// run still uploads usable pprof artifacts.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tacobench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modes       = flag.String("modes", "local,cabinet,remote,guarded,script,hop,durable,durable-naive,replicated,mixed,parked,fleet,fleet-lookup,fleet-converge", "comma-separated workloads to run")
		concurrency = flag.Int("concurrency", 2*runtime.GOMAXPROCS(0), "concurrent client goroutines per workload")
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per workload")
		payload     = flag.Int("payload", 64, "briefcase payload element size in bytes")
		fleetSites  = flag.Int("fleet-sites", 10, "fleet lanes: number of meshed in-process sites")
		fleetAgents = flag.Int("fleet-agents", 100000, "fleet lanes: resident agent population across the fleet")
		parkedPop   = flag.Int("parked-agents", 100000, "parked lane: idle parked-agent population at the measured site")
		scriptSrc   = flag.String("script-src", "", "file whose contents replace the built-in script-lane workload (default: core.ScriptWorkloadSrc)")
		cpus        = flag.String("cpus", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4,8); runs the whole mode list once per value, one report per value")
		out         = flag.String("out", "BENCH_meet.json", "output path for the JSON report ('-' for stdout); a -cpus sweep inserts .cpuN before the extension")
		verbose     = flag.Bool("v", false, "print per-workload results as they finish")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile covering all workloads to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	// pprof per run, so a lane regression in CI is diagnosable from the
	// uploaded artifact instead of needing a local repro.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tacobench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "tacobench: memprofile: %v\n", err)
			}
		}()
	}

	opts := benchOpts{
		concurrency: *concurrency,
		duration:    *duration,
		payload:     *payload,
		fleetSites:  *fleetSites,
		fleetAgents: *fleetAgents,
		parkedPop:   *parkedPop,
	}
	if *scriptSrc != "" {
		src, err := os.ReadFile(*scriptSrc)
		if err != nil {
			return fmt.Errorf("script-src: %w", err)
		}
		opts.scriptSrc = string(src)
	}

	// A -cpus sweep runs the whole mode list once per GOMAXPROCS setting
	// and emits one Report per setting, so scaling (and its first
	// contention point) is a diff between files, not a guess.
	sweep := []int{0} // 0 = leave GOMAXPROCS alone
	if *cpus != "" {
		sweep = sweep[:0]
		for _, c := range strings.Split(*cpus, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -cpus entry %q", c)
			}
			sweep = append(sweep, n)
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range sweep {
		if procs > 0 {
			runtime.GOMAXPROCS(procs)
			if *verbose {
				fmt.Fprintf(os.Stderr, "--- GOMAXPROCS=%d ---\n", procs)
			}
		}
		report := Report{
			Schema:     ReportSchema,
			Go:         runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		for _, mode := range strings.Split(*modes, ",") {
			mode = strings.TrimSpace(mode)
			if mode == "" {
				continue
			}
			res, err := runMode(mode, opts)
			if err != nil {
				return fmt.Errorf("%s: %w", mode, err)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "%-14s %9.0f ops/sec  p50 %7dns  p99 %7dns  %6.1f allocs/op\n",
					res.Name, res.OpsPerSec, res.P50Ns, res.P99Ns, res.AllocsPerOp)
			}
			report.Benchmarks = append(report.Benchmarks, res)
		}
		if err := writeReport(report, *out, *cpus != "", report.GOMAXPROCS); err != nil {
			return err
		}
	}
	return nil
}

// writeReport emits one report; a -cpus sweep tags the output path with the
// GOMAXPROCS value so each setting gets its own file.
func writeReport(report Report, out string, sweep bool, procs int) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if sweep {
		ext := ""
		if i := strings.LastIndex(out, "."); i > 0 {
			out, ext = out[:i], out[i:]
		}
		out = fmt.Sprintf("%s.cpu%d%s", out, procs, ext)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", out, err)
	}
	return nil
}

// op is one client operation; worker identifies the issuing goroutine so
// workloads can give each client private state (briefcases are single-owner).
type op func(worker int) error

// workload couples per-worker ops with the teardown for their fixtures.
type workload struct {
	op      op
	cleanup func()
	// stats, when non-nil, renders a one-line workload summary after the
	// measured run (the durable lanes report the WAL's group-commit batch
	// histogram). Printed to stderr so JSON output stays machine-parseable.
	stats func() string
	// concurrency, when non-zero, pins the workload's worker count
	// regardless of the -concurrency flag. The durable lanes use it: group
	// commit is a concurrency phenomenon, and the committed baseline's
	// numbers are only meaningful at the concurrency they were measured at.
	concurrency int
}

// benchOpts carries the sizing flags to workload builders.
type benchOpts struct {
	concurrency int
	duration    time.Duration
	payload     int
	fleetSites  int
	fleetAgents int
	parkedPop   int
	// scriptSrc, when non-empty, replaces the script lane's built-in
	// workload (-script-src). testdata/heavy.tacl is the committed
	// proc-and-cabinet-heavy alternative.
	scriptSrc string
}

// runMode builds the named workload and measures it.
func runMode(mode string, o benchOpts) (Result, error) {
	if mode == "fleet-converge" {
		// Convergence is not an op/sec workload: trials drive the protocol
		// in simulated time and the samples are simulated durations.
		return fleetConverge(o.fleetSites, o.duration)
	}
	w, err := buildWorkload(mode, o)
	if err != nil {
		return Result{}, err
	}
	if w.cleanup != nil {
		defer w.cleanup()
	}
	concurrency := o.concurrency
	if w.concurrency > 0 {
		concurrency = w.concurrency
	}
	res, err := measure(mode, concurrency, o.duration, w.op)
	if err == nil && w.stats != nil {
		fmt.Fprintf(os.Stderr, "tacobench: %s: %s\n", mode, w.stats())
	}
	return res, err
}

func buildWorkload(mode string, o benchOpts) (workload, error) {
	concurrency, payload := o.concurrency, o.payload
	switch mode {
	case "local":
		return localWorkload(concurrency, payload), nil
	case "cabinet":
		return cabinetWorkload(concurrency, payload), nil
	case "remote":
		return remoteWorkload(concurrency, payload)
	case "guarded":
		return guardedWorkload(concurrency, payload)
	case "script":
		return scriptWorkload(concurrency, payload, o.scriptSrc), nil
	case "hop":
		return hopWorkload(concurrency, payload)
	case "durable":
		return durableWorkload(payload, false, false)
	case "durable-naive":
		return durableWorkload(payload, true, false)
	case "replicated":
		return durableWorkload(payload, false, true)
	case "parked":
		return parkedWorkload(o.parkedPop, concurrency, payload)
	case "fleet":
		return fleetWorkload(o.fleetSites, o.fleetAgents, concurrency, payload)
	case "fleet-lookup":
		return fleetLookupWorkload(o.fleetSites, o.fleetAgents)
	case "mixed":
		local := localWorkload(concurrency, payload)
		cabinet := cabinetWorkload(concurrency, payload)
		remote, err := remoteWorkload(concurrency, payload)
		if err != nil {
			return workload{}, err
		}
		ops := []op{local.op, cabinet.op, remote.op}
		var turn atomic.Int64
		return workload{
			op: func(worker int) error {
				return ops[int(turn.Add(1))%len(ops)](worker)
			},
			cleanup: remote.cleanup,
		}, nil
	default:
		return workload{}, fmt.Errorf("unknown mode %q (want local, cabinet, remote, guarded, script, hop, durable, durable-naive, replicated, parked, fleet, fleet-lookup, fleet-converge, or mixed)", mode)
	}
}

// localWorkload: pure dispatch against a no-op agent, one briefcase per
// worker carrying one payload element.
func localWorkload(concurrency, payload int) workload {
	sys := tacoma.NewSystem(1, tacoma.SystemConfig{Seed: 1})
	site := sys.SiteAt(0)
	site.Register("noop", tacoma.AgentFunc(
		func(*tacoma.MeetContext, *tacoma.Briefcase) error { return nil }))
	bcs := workerBriefcases(concurrency, payload)
	return workload{op: func(worker int) error {
		return site.MeetClient(context.Background(), "noop", bcs[worker])
	}}
}

// cabinetWorkload: the realistic service meet — argument read, cabinet visit
// record, snapshot of a 256-element site folder handed back via the
// briefcase.
func cabinetWorkload(concurrency, payload int) workload {
	sys := tacoma.NewSystem(1, tacoma.SystemConfig{Seed: 1})
	site := sys.SiteAt(0)
	elem := make([]byte, payload)
	for i := 0; i < 256; i++ {
		site.Cabinet().Append("DATA", elem)
	}
	site.Register("visit", tacoma.AgentFunc(
		func(mc *tacoma.MeetContext, bc *tacoma.Briefcase) error {
			id, err := bc.GetString("REQ")
			if err != nil {
				return err
			}
			mc.Site.Cabinet().TestAndAppendString("SEEN", id)
			bc.Put(tacoma.ResultFolder, mc.Site.Cabinet().Snapshot("DATA"))
			return nil
		}))
	bcs := workerBriefcases(concurrency, payload)
	for i, bc := range bcs {
		bc.PutString("REQ", fmt.Sprintf("client-%d", i))
	}
	return workload{op: func(worker int) error {
		return site.MeetClient(context.Background(), "visit", bcs[worker])
	}}
}

// remoteWorkload: meets across two real TCP endpoints on loopback, so the
// measurement includes codec, framing, and the pipelined connection.
func remoteWorkload(concurrency, payload int) (workload, error) {
	epA, err := tacoma.NewTCPEndpoint("bench-a", "127.0.0.1:0")
	if err != nil {
		return workload{}, err
	}
	epB, err := tacoma.NewTCPEndpoint("bench-b", "127.0.0.1:0")
	if err != nil {
		epA.Close()
		return workload{}, err
	}
	epA.AddPeer("bench-b", epB.Addr())
	epB.AddPeer("bench-a", epA.Addr())
	siteA := tacoma.NewSite(epA, tacoma.SiteConfig{})
	siteB := tacoma.NewSite(epB, tacoma.SiteConfig{})
	siteB.Register("noop", tacoma.AgentFunc(
		func(*tacoma.MeetContext, *tacoma.Briefcase) error { return nil }))
	bcs := workerBriefcases(concurrency, payload)
	return workload{
		op: func(worker int) error {
			return siteA.RemoteMeet(context.Background(), "bench-b", "noop", bcs[worker])
		},
		cleanup: func() { epA.Close(); epB.Close() },
	}, nil
}

// guardedWorkload: the accountability path — a firewall-free guarded site
// enforcing a capability ACL against signed briefcases.
func guardedWorkload(concurrency, payload int) (workload, error) {
	sys := tacoma.NewSystem(1, tacoma.SystemConfig{Seed: 1})
	site := sys.SiteAt(0)
	site.Register("visit", tacoma.AgentFunc(
		func(*tacoma.MeetContext, *tacoma.Briefcase) error { return nil }))
	keys := tacoma.NewKeyring()
	keys.Enroll("bench-client")
	policy := tacoma.NewPolicy()
	policy.Grant("bench-client", tacoma.Capability{Meet: []string{"visit"}})
	tacoma.InstallGuard(site, tacoma.NewGuard(policy, keys))
	bcs := workerBriefcases(concurrency, payload)
	for _, bc := range bcs {
		if err := tacoma.SignBriefcase(keys, "bench-client", bc, "PAYLOAD"); err != nil {
			return workload{}, err
		}
	}
	return workload{op: func(worker int) error {
		return site.MeetClient(context.Background(), "visit", bcs[worker])
	}}, nil
}

// scriptWorkload: the scripted-agent meet — each op pushes the workload
// script (by default core.ScriptWorkloadSrc, the same constant
// BenchmarkScriptedMeet runs, so the CI gate and the Go benchmark measure
// one workload; -script-src substitutes any file) onto CODE and meets
// ag_tacl, exercising the bytecode cache, the pooled interpreter, and the
// shared host-command table under concurrency.
func scriptWorkload(concurrency, payload int, src string) workload {
	if src == "" {
		src = core.ScriptWorkloadSrc
	}
	sys := tacoma.NewSystem(1, tacoma.SystemConfig{Seed: 1})
	site := sys.SiteAt(0)
	bcs := workerBriefcases(concurrency, payload)
	return workload{op: func(worker int) error {
		bc := bcs[worker]
		bc.Ensure(tacoma.CodeFolder).PushString(src)
		return site.MeetClient(context.Background(), tacoma.AgTacl, bc)
	}}
}

// hopScript is the itinerary agent the hop lane launches: at each station
// it records the site in its TRAIL, then jumps to the next HOPS entry. The
// briefcase accretes one result per hop; CODE is restored before each jump
// and SIG is frozen at launch, so both stay byte-identical across the whole
// itinerary — the workload wire protocol v2's content-addressed deltas are
// built for.
const hopScript = `
set mission "multi-hop itinerary benchmark: record each station, then home"
bc_push TRAIL [host]
if {[bc_len HOPS] > 0} {
	set next [bc_dequeue HOPS]
	jump $next
}
bc_push TRAIL done
`

// hopWorkload: the paper's actual workload — a signed mobile agent carrying
// its briefcase through a multi-hop TCP itinerary. Each op launches a
// freshly signed agent at site hop-0 that jumps hop-1 → hop-2 → hop-3,
// accreting a TRAIL entry per station; the op completes when the nested
// meet chain unwinds back to the launcher. After the first itinerary warms
// the per-link caches, SIG and CODE cross every link as 32-byte refs.
func hopWorkload(concurrency, payload int) (workload, error) {
	const nsites = 4
	eps := make([]*vnet.TCPEndpoint, 0, nsites)
	cleanup := func() {
		for _, ep := range eps {
			ep.Close()
		}
	}
	sites := make([]*tacoma.Site, 0, nsites)
	for i := 0; i < nsites; i++ {
		ep, err := tacoma.NewTCPEndpoint(tacoma.SiteID(fmt.Sprintf("hop-%d", i)), "127.0.0.1:0")
		if err != nil {
			cleanup()
			return workload{}, err
		}
		eps = append(eps, ep)
	}
	for i, ep := range eps {
		for j, other := range eps {
			if i != j {
				ep.AddPeer(other.ID(), other.Addr())
			}
		}
		sites = append(sites, tacoma.NewSite(ep, tacoma.SiteConfig{Seed: int64(i + 1)}))
	}
	keys := tacoma.NewKeyring()
	keys.Enroll("hop-bench")

	itinerary := []string{"hop-1", "hop-2", "hop-3"}
	elem := make([]byte, payload)
	return workload{
		op: func(worker int) error {
			bc, err := tacoma.SignedScript(keys, "hop-bench", "", hopScript, nil)
			if err != nil {
				return err
			}
			f := tacoma.NewFolder()
			for _, h := range itinerary {
				f.PushString(h)
			}
			bc.Put("HOPS", f)
			p := tacoma.NewFolder()
			p.Push(elem)
			bc.Put("PAYLOAD", p)
			if err := tacoma.LaunchSigned(context.Background(), sites[0], bc); err != nil {
				return err
			}
			if trail, err := bc.Folder("TRAIL"); err != nil || trail.Len() != len(itinerary)+2 {
				return fmt.Errorf("hop: TRAIL has %v stations (err %v), want %d", trail, err, len(itinerary)+2)
			}
			return nil
		},
		cleanup: cleanup,
	}, nil
}

// Durable-lane shape: worker count is pinned (group commit batches across
// concurrent meets, so the measurement is only meaningful at a fixed
// concurrency) and every meet delivers a batch of elements, the paper's
// courier pattern — one durability barrier amortizes over the batch AND
// over the other workers' concurrent barriers.
const (
	durableConcurrency = 8
	durableBatch       = 8
)

// durableWorkload is the WAL-backed cabinet meet: each op meets "deliver",
// which appends the briefcase's 8-element WORK batch to the worker's
// mailbox folder, records the visit, and drains the mailbox FIFO once it
// exceeds 1k elements — all journaled, with one group-committed fdatasync
// barrier per meet. naive switches the WAL to fsync-per-mutation, the
// baseline the group-commit design exists to beat (see DESIGN.md § Durable
// cabinets for the measured gap). replicated attaches a repl follower (its
// own fdatasynced replica directory) shipping in the background, measuring
// what WAL shipping costs the durable meet path — asynchronous shipping
// means the answer should be "disk contention only", and the lane proves
// or disproves that.
func durableWorkload(payload int, naive, replicated bool) (workload, error) {
	dir, err := os.MkdirTemp("", "tacobench-wal-")
	if err != nil {
		return workload{}, err
	}
	elem := make([]byte, payload)

	// Pre-fill every mailbox to the drain threshold through a sync-free WAL
	// generation, so the measured run is in steady state (append + drain,
	// 17 records per op) from its first op — and so the measured WAL boots
	// through a real recovery replay of that generation.
	pcab := tacoma.NewFileCabinet()
	prefill, err := tacoma.OpenWAL(dir, pcab, tacoma.WALOptions{NoSync: true})
	if err != nil {
		os.RemoveAll(dir)
		return workload{}, err
	}
	for i := 0; i < durableConcurrency; i++ {
		for j := 0; j < 1024; j++ {
			pcab.Append(fmt.Sprintf("MBOX:w%d", i), elem)
		}
	}
	if err := prefill.Close(); err != nil {
		os.RemoveAll(dir)
		return workload{}, err
	}

	sys := tacoma.NewSystem(1, tacoma.SystemConfig{Seed: 1})
	site := sys.SiteAt(0)
	wal, err := tacoma.OpenWAL(dir, site.Cabinet(), tacoma.WALOptions{SyncEveryRecord: naive})
	if err != nil {
		os.RemoveAll(dir)
		return workload{}, err
	}
	site.SetDurable(wal)
	site.Register("deliver", tacoma.AgentFunc(
		func(mc *tacoma.MeetContext, bc *tacoma.Briefcase) error {
			req, err := bc.GetString("REQ")
			if err != nil {
				return err
			}
			client, err := bc.GetString("CLIENT")
			if err != nil {
				return err
			}
			work, err := bc.Folder("WORK")
			if err != nil {
				return err
			}
			cab := mc.Site.Cabinet()
			mbox := "MBOX:" + client
			for i := 0; i < work.Len(); i++ {
				cab.Append(mbox, work.RawAt(i))
			}
			cab.TestAndAppendString("SEEN", req)
			if cab.FolderLen(mbox) > 1024 {
				for i := 0; i < work.Len(); i++ {
					if _, err := cab.Dequeue(mbox); err != nil {
						return err
					}
				}
			}
			return nil
		}))

	// The replicated lane attaches a follower with its own fdatasynced
	// replica directory on a private two-node sim net (shipping is a lane
	// RPC; it needs a wire, not the meet path's site). The meet workload is
	// byte-identical to the durable lane — the delta between the two lanes
	// IS the cost of background WAL shipping.
	teardown := func() {
		wal.Close()
		os.RemoveAll(dir)
	}
	if replicated {
		repDir, err := os.MkdirTemp("", "tacobench-replica-")
		if err != nil {
			wal.Close()
			os.RemoveAll(dir)
			return workload{}, err
		}
		rnet := vnet.NewNetwork(vnet.WithSeed(1))
		nodeL, nodeF := rnet.AddNode("bench-ldr"), rnet.AddNode("bench-rep")
		fsite := core.NewSite(nodeF, core.SiteConfig{
			Admission: func(agent, from string) error { return fmt.Errorf("standby") },
		})
		fol, err := repl.NewFollower(fsite, repl.FollowerConfig{
			Dir: repDir, Leader: "bench-ldr",
		})
		if err != nil {
			wal.Close()
			os.RemoveAll(dir)
			os.RemoveAll(repDir)
			return workload{}, err
		}
		ldr := repl.StartLeader(nodeL, wal, repl.LeaderConfig{Follower: "bench-rep"})
		teardown = func() {
			// Drain first: a lane that finishes with unbounded lag would be
			// measuring a queue, not replication.
			dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := ldr.Drain(dctx); err != nil {
				fmt.Fprintf(os.Stderr, "tacobench: replicated drain: %v\n", err)
			}
			cancel()
			ldr.Stop()
			fol.Close()
			wal.Close()
			os.RemoveAll(dir)
			os.RemoveAll(repDir)
		}
	}

	bcs := make([]*tacoma.Briefcase, durableConcurrency)
	seqs := make([]int, durableConcurrency)
	for i := range bcs {
		bc := tacoma.NewBriefcase()
		bc.PutString("CLIENT", fmt.Sprintf("w%d", i))
		work := tacoma.NewFolder()
		for j := 0; j < durableBatch; j++ {
			work.Push(elem)
		}
		bc.Put("WORK", work)
		bcs[i] = bc
	}
	return workload{
		op: func(worker int) error {
			seqs[worker]++
			bcs[worker].PutString("REQ", fmt.Sprintf("%d/%d", worker, seqs[worker]))
			return site.MeetClient(context.Background(), "deliver", bcs[worker])
		},
		cleanup:     teardown,
		concurrency: durableConcurrency,
		stats: func() string {
			st := wal.Stats()
			return fmt.Sprintf("wal sync batches: %s (records=%d syncs=%d)",
				st.FormatBatchHist(), st.Records, st.Syncs)
		},
	}, nil
}

// workerBriefcases builds one briefcase per worker, each with a PAYLOAD
// folder holding one element of the requested size. Briefcases are
// single-owner, so workers never share.
func workerBriefcases(n, payload int) []*tacoma.Briefcase {
	out := make([]*tacoma.Briefcase, n)
	elem := make([]byte, payload)
	for i := range out {
		bc := tacoma.NewBriefcase()
		f := tacoma.NewFolder()
		f.Push(elem)
		bc.Put("PAYLOAD", f)
		out[i] = bc
	}
	return out
}

// measure drives op from `concurrency` workers for duration d and reduces
// the per-op latency samples to the Result schema.
func measure(name string, concurrency int, d time.Duration, fn op) (Result, error) {
	var stop atomic.Bool
	var firstErr atomic.Value
	lats := make([][]int64, concurrency)

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	timer := time.AfterFunc(d, func() { stop.Store(true) })
	defer timer.Stop()

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]int64, 0, 1<<14)
			for !stop.Load() {
				t0 := time.Now()
				if err := fn(w); err != nil {
					firstErr.CompareAndSwap(nil, err)
					stop.Store(true)
					break
				}
				samples = append(samples, int64(time.Since(t0)))
			}
			lats[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return Result{}, err
	}
	var all []int64
	for _, s := range lats {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return Result{}, fmt.Errorf("no operations completed in %v", d)
	}
	res := reduceSamples(name, concurrency, elapsed, all)
	res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Ops)
	res.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(res.Ops)
	return res, nil
}

// reduceSamples folds per-op samples (nanoseconds — wall time for op
// workloads, simulated time for the converge lane) into the Result schema.
func reduceSamples(name string, concurrency int, elapsed time.Duration, samples []int64) Result {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	ops := int64(len(samples))
	return Result{
		Name:        name,
		Concurrency: concurrency,
		DurationNs:  int64(elapsed),
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		P50Ns:       samples[len(samples)/2],
		P99Ns:       samples[len(samples)*99/100],
	}
}
