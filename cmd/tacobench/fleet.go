package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/mesh"
	"repro/internal/vnet"
)

// The fleet lanes are the multi-site macro-benchmark: a mesh of in-process
// sites with a large resident agent population, measuring what the paper's
// fleet deployment cares about —
//
//	fleet          mesh-routed meets/sec: a meet issued at a random site for
//	               a random resident agent, forwarded at most one hop to the
//	               ring owner;
//	fleet-lookup   placement lookup latency: Ring.Owner on the hot path,
//	               the cost every misplaced meet pays before forwarding;
//	fleet-converge membership convergence: kill a site, count protocol
//	               periods until every survivor has dropped it, restart,
//	               wait for rejoin; samples are SIMULATED time
//	               (ticks × probe interval), not wall time.
//
// Sizing comes from -fleet-sites and -fleet-agents; CI's smoke lane runs
// 10 sites × 10k agents, the committed baseline 10 × 100k.

// fleetProbeInterval is the simulated protocol period used by the converge
// lane to translate ticks into seconds.
const fleetProbeInterval = 100 * time.Millisecond

// fleetFixture is a booted mesh of sites with resident agents.
type fleetFixture struct {
	sys    *core.System
	meshes []*mesh.Mesh
	names  []string // resident agent names
}

// buildFleet boots nsites meshed sites and registers agents resident
// no-op agents, each at its ring owner.
func buildFleet(nsites, agents int) (*fleetFixture, error) {
	sys := core.NewSystem(nsites, core.SystemConfig{
		Seed: 1,
		// Fast failure detection: converge-lane probes to the killed site
		// fail in milliseconds of real time, while simulated time is counted
		// in ticks.
		CallTimeout: 2 * time.Millisecond,
	})
	fx := &fleetFixture{sys: sys}
	for i := 0; i < nsites; i++ {
		cfg := mesh.Config{
			ProbeInterval: fleetProbeInterval,
			ProbeTimeout:  10 * time.Millisecond,
		}
		if i > 0 {
			cfg.Seeds = []vnet.SiteID{sys.SiteAt(0).ID()}
		}
		fx.meshes = append(fx.meshes, mesh.New(sys.SiteAt(i), cfg))
	}
	for _, m := range fx.meshes {
		if err := m.Join(context.Background()); err != nil {
			return nil, fmt.Errorf("fleet join: %w", err)
		}
	}
	if ticks := fx.ticksUntilAlive(nsites, 4*nsites); ticks < 0 {
		return nil, fmt.Errorf("fleet of %d sites never converged", nsites)
	}
	noop := core.AgentFunc(func(*core.MeetContext, *folder.Briefcase) error { return nil })
	fx.names = make([]string, agents)
	for i := range fx.names {
		name := fmt.Sprintf("fa-%d", i)
		fx.names[i] = name
		owner, ok := fx.meshes[0].Resolve(name)
		if !ok {
			return nil, fmt.Errorf("no ring owner for %s", name)
		}
		sys.Site(owner).Register(name, noop)
	}
	return fx, nil
}

// tickAll runs one protocol period on every live member.
func (fx *fleetFixture) tickAll() {
	for _, m := range fx.meshes {
		if !fx.sys.Net.Crashed(m.Site().ID()) {
			m.Tick(context.Background())
		}
	}
}

// ticksUntilAlive ticks until every live member sees want alive members;
// -1 if maxTicks was not enough.
func (fx *fleetFixture) ticksUntilAlive(want, maxTicks int) int {
	for t := 1; t <= maxTicks; t++ {
		fx.tickAll()
		done := true
		for _, m := range fx.meshes {
			if fx.sys.Net.Crashed(m.Site().ID()) {
				continue
			}
			if len(m.Alive()) != want {
				done = false
				break
			}
		}
		if done {
			return t
		}
	}
	return -1
}

// fleetWorkload: mesh-routed meets. Each op meets one resident agent at a
// rotating issuing site; when the issuer is not the ring owner the kernel's
// resolver hook forwards the meet exactly one hop.
func fleetWorkload(nsites, agents, concurrency, payload int) (workload, error) {
	fx, err := buildFleet(nsites, agents)
	if err != nil {
		return workload{}, err
	}
	bcs := make([]*folder.Briefcase, concurrency)
	elem := make([]byte, payload)
	for i := range bcs {
		bc := folder.NewBriefcase()
		f := folder.New()
		f.Push(elem)
		bc.Put("PAYLOAD", f)
		bcs[i] = bc
	}
	var seq atomic.Int64
	sites := make([]*core.Site, nsites)
	for i := range sites {
		sites[i] = fx.sys.SiteAt(i)
	}
	return workload{op: func(worker int) error {
		n := seq.Add(1)
		agentName := fx.names[int(n)%len(fx.names)]
		issuer := sites[int(n)%len(sites)]
		return issuer.MeetClient(context.Background(), agentName, bcs[worker])
	}}, nil
}

// fleetLookupWorkload: pure placement resolution — the ring lookup every
// meet-path miss performs before forwarding. Lookup latency must stay flat
// as the fleet and the agent population grow.
func fleetLookupWorkload(nsites, agents int) (workload, error) {
	fx, err := buildFleet(nsites, agents)
	if err != nil {
		return workload{}, err
	}
	ring := fx.meshes[0].Ring()
	names := fx.names
	var seq atomic.Int64
	return workload{op: func(worker int) error {
		n := seq.Add(1)
		if _, ok := ring.Owner(names[int(n)%len(names)]); !ok {
			return fmt.Errorf("lookup miss on a full ring")
		}
		return nil
	}}, nil
}

// fleetConverge runs kill/converge/restart trials and reports SIMULATED
// convergence time: ticks-to-converge × probe interval. ops_per_sec counts
// trials against wall time (reported for context; the lane is ungated in
// CI — simulated-time percentiles are the measurement, and the acceptance
// bound is p99 < 2s simulated).
func fleetConverge(nsites int, d time.Duration) (Result, error) {
	fx, err := buildFleet(nsites, 0)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewPCG(9, 9))
	var samples []int64
	start := time.Now()
	const maxTrials = 32
	for trial := 0; trial < maxTrials; trial++ {
		if trial >= 3 && time.Since(start) > d {
			break
		}
		victim := fx.sys.SiteAt(1 + rng.IntN(nsites-1)).ID() // keep the seed up
		if err := fx.sys.Net.Crash(victim); err != nil {
			return Result{}, err
		}
		ticks := fx.ticksUntilAlive(nsites-1, 40)
		if ticks < 0 {
			return Result{}, fmt.Errorf("trial %d: survivors never converged after killing %s", trial, victim)
		}
		samples = append(samples, int64(time.Duration(ticks)*fleetProbeInterval))
		if err := fx.sys.Net.Restart(victim); err != nil {
			return Result{}, err
		}
		if fx.ticksUntilAlive(nsites, 80) < 0 {
			return Result{}, fmt.Errorf("trial %d: %s never rejoined", trial, victim)
		}
	}
	elapsed := time.Since(start)
	return reduceSamples("fleet-converge", 1, elapsed, samples), nil
}
