package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/vnet"
)

func TestPeerListSet(t *testing.T) {
	var p peerList
	if err := p.Set("site-1=127.0.0.1:7101"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("site-2=10.0.0.2:7102"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("peers = %v", p)
	}
	if p.String() != "site-1=127.0.0.1:7101,site-2=10.0.0.2:7102" {
		t.Fatalf("String = %q", p.String())
	}
	if err := p.Set("missing-equals"); err == nil {
		t.Fatal("malformed peer accepted")
	}
}

func TestFlushCabinetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cabinet.bin")

	net := vnet.NewNetwork()
	s := core.NewSite(net.AddNode("persist-test"), core.SiteConfig{})
	s.Cabinet().AppendString("MBOX:alice", "a message")
	s.Cabinet().AppendString("VISITED", "roamer-1")
	if err := flushCabinet(s, path); err != nil {
		t.Fatal(err)
	}
	// No .tmp residue after an atomic flush.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}

	s2 := core.NewSite(net.AddNode("persist-test-2"), core.SiteConfig{})
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s2.Cabinet().Load(f); err != nil {
		t.Fatal(err)
	}
	if !s2.Cabinet().ContainsString("MBOX:alice", "a message") {
		t.Fatal("mailbox lost across flush/load")
	}
	if !s2.Cabinet().ContainsString("VISITED", "roamer-1") {
		t.Fatal("visit marks lost across flush/load")
	}
}
