package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vnet"
)

// TestReplicaTakeoverAfterKill9 is the daemon-level failover test: a
// WAL-backed leader tacomad ships to a standby tacomad, the leader is
// SIGKILLed, and the standby must promote itself and serve the leader's
// durable cabinet on its own address. (The guard/relaunch half of failover
// is proven in internal/repl's sim test; this one proves the flag wiring,
// the probe, and promotion in a real process.)
func TestReplicaTakeoverAfterKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons; skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	epO, err := vnet.NewTCPEndpoint("O", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epO.Close()
	siteO := core.NewSite(epO, core.SiteConfig{})

	addrL, addrF := freePort(t), freePort(t)
	epO.AddPeer("L", addrL)
	epO.AddPeer("F", addrF)

	leader := spawnTacomad(t,
		"-site", "L", "-listen", addrL, "-wal", t.TempDir(),
		"-peer", "O="+epO.Addr(),
		"-replica-listen", "F="+addrF,
	)
	killed := false
	defer func() {
		if !killed {
			leader.Process.Kill()
			leader.Wait()
		}
	}()
	standby := spawnTacomad(t,
		"-site", "F", "-listen", addrF, "-wal", t.TempDir(),
		"-peer", "L="+addrL, "-peer", "O="+epO.Addr(),
		"-replica-of", "L",
		"-replica-probe-interval", "100ms",
	)
	defer func() {
		standby.Process.Kill()
		standby.Wait()
	}()
	waitUp(t, ctx, siteO, "L")
	waitUp(t, ctx, siteO, "F")

	// Durable state at the leader: the meet returns only after L's WAL
	// commit, and the background shipper pushes the bytes to F.
	if _, err := remoteScript(ctx, siteO, "L", `cab_append FAILOVER survived-the-kill`); err != nil {
		t.Fatal(err)
	}

	// The standby is a disk, not a site: meets must be refused.
	if _, err := remoteScript(ctx, siteO, "F", `cab_append X y`); err == nil {
		t.Fatal("standby accepted a meet before promotion")
	} else if !strings.Contains(err.Error(), "standby") {
		t.Fatalf("standby refusal reads %q, want the admission message", err)
	}

	// Let the async shipper drain (sync-notify driven, so this is a wide
	// margin, not a tuned sleep), then kill -9 the leader.
	time.Sleep(1200 * time.Millisecond)
	killed = true
	if err := leader.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.Wait()

	// The probe declares L dead and F promotes in place: the same address
	// now serves the leader's cabinet.
	deadline := time.Now().Add(30 * time.Second)
	for {
		out, err := remoteScript(ctx, siteO, "F",
			`bc_push OUT [cab_contains FAILOVER survived-the-kill]`)
		if err == nil && out.Len() == 1 {
			if s, _ := out.StringAt(0); s == "1" {
				break
			}
			t.Fatal("promoted standby lost the replicated folder")
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never promoted: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And it is a live site now: new durable writes land.
	if _, err := remoteScript(ctx, siteO, "F", `cab_append FAILOVER post-promotion`); err != nil {
		t.Fatalf("promoted site refused a meet: %v", err)
	}
}
