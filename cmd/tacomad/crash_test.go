package main

import (
	"context"
	"flag"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/rearguard"
	"repro/internal/vnet"
)

// TestMain lets the test binary double as the tacomad executable: the
// kill-9 recovery test re-execs itself with TACOMAD_CHILD=1 to run real
// daemon processes it can SIGKILL, without needing `go build` inside the
// test.
func TestMain(m *testing.M) {
	if os.Getenv("TACOMAD_CHILD") == "1" {
		flag.CommandLine = flag.NewFlagSet("tacomad", flag.ExitOnError)
		os.Args = append([]string{"tacomad"},
			strings.Split(os.Getenv("TACOMAD_ARGS"), "\x1f")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnTacomad re-execs the test binary as a tacomad daemon.
func spawnTacomad(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"TACOMAD_CHILD=1",
		"TACOMAD_ARGS="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		data, _ := io.ReadAll(stderr)
		if len(data) > 0 {
			t.Logf("tacomad child:\n%s", data)
		}
	}()
	return cmd
}

// freePort reserves an ephemeral TCP port and releases it for the child.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// remoteScript runs a TacL script at the daemon and returns the OUT folder.
func remoteScript(ctx context.Context, from *core.Site, dest vnet.SiteID, src string) (*folder.Folder, error) {
	bc := folder.NewBriefcase()
	bc.Ensure(folder.CodeFolder).PushString(src)
	if err := from.RemoteMeet(ctx, dest, core.AgTacl, bc); err != nil {
		return nil, err
	}
	out, err := bc.Folder("OUT")
	if err != nil {
		return folder.New(), nil // script produced no output
	}
	return out, nil
}

// TestKill9RecoversCabinetAndGuards is the end-to-end durability
// acceptance test: a WAL-backed tacomad is SIGKILLed mid-computation and
// restarted, and the restarted daemon must present both its cabinet
// contents and its armed rear guard — proven functionally, by the
// recovered guard relaunching the computation when the site it watches
// dies.
//
// Topology: the parent process runs origin site O (with a rear-guard
// manager) and site D, whose rg_agent stub blocks forever — the itinerary
// C → D therefore stalls at D while C holds an armed guard watching D.
func TestKill9RecoversCabinetAndGuards(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	walDir := t.TempDir()

	epO, err := vnet.NewTCPEndpoint("O", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epO.Close()
	epD, err := vnet.NewTCPEndpoint("D", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epD.Close()

	siteO := core.NewSite(epO, core.SiteConfig{})
	mgrO := rearguard.Install(siteO)
	siteD := core.NewSite(epD, core.SiteConfig{})
	reached := make(chan struct{})
	blocker := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(blocker) })
	defer unblock()
	siteD.Register(rearguard.AgHop, core.AgentFunc(
		func(mc *core.MeetContext, bc *folder.Briefcase) error {
			select {
			case <-reached:
			default:
				close(reached)
			}
			<-blocker
			return nil
		}))

	addrC := freePort(t)
	childArgs := []string{
		"-site", "C", "-listen", addrC, "-wal", walDir,
		"-peer", "O=" + epO.Addr(), "-peer", "D=" + epD.Addr(),
	}
	epO.AddPeer("C", addrC)
	epD.AddPeer("C", addrC)
	epO.AddPeer("D", epD.Addr())
	epD.AddPeer("O", epO.Addr())

	child := spawnTacomad(t, childArgs...)
	killed := false
	defer func() {
		if !killed {
			child.Process.Kill()
			child.Wait()
		}
	}()
	waitUp(t, ctx, siteO, "C")

	// Durable cabinet mutation via an ordinary roaming script: the remote
	// meet only returns once C's WAL has committed it.
	if _, err := remoteScript(ctx, siteO, "C", `cab_append CRASHTEST hello-1`); err != nil {
		t.Fatal(err)
	}

	// Start the guarded computation C -> D. It stalls inside D's blocking
	// rg_agent, which pins an armed guard (watching D) at C.
	ch, err := mgrO.Launch(ctx, rearguard.Config{
		ID: "k9", Task: "no_such_task", Itinerary: []vnet.SiteID{"C", "D"}, Guards: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(15 * time.Second):
		t.Fatal("computation never reached site D")
	}
	// C releases the origin's guard as it advances; once that lands, the
	// only armed guard in the system is C's — so the recovery below can
	// only be explained by C's guard surviving the kill.
	waitCond(t, "origin guard released", func() bool { return mgrO.ActiveGuards() == 0 })

	// SIGKILL: no signal handler, no shutdown flush, no WAL close.
	killed = true
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	// Restart over the same WAL directory.
	child2 := spawnTacomad(t, childArgs...)
	defer func() {
		child2.Process.Kill()
		child2.Wait()
	}()
	waitUp(t, ctx, siteO, "C")

	// Cabinet contents recovered (polled: the ping can win a race with the
	// tail of WAL replay).
	waitCond(t, "cabinet recovered", func() bool {
		out, err := remoteScript(ctx, siteO, "C",
			`bc_push OUT [cab_contains CRASHTEST hello-1]`)
		if err != nil || out.Len() != 1 {
			return false
		}
		s, _ := out.StringAt(0)
		return s == "1"
	})

	// Armed guard recovered: kill the watched site and the re-armed guard
	// at C must relaunch — D is dead and the itinerary exhausted, so the
	// checkpoint comes home flagged, waking the origin's waiter. The stub
	// must unblock first: Close drains in-flight handler streams.
	unblock()
	epD.Close()
	res := rearguard.Wait(ch, 30*time.Second)
	if !res.Completed {
		t.Fatal("restarted site never relaunched the computation: its rear guard did not survive the crash")
	}
	if len(res.Skipped) == 0 || res.Skipped[len(res.Skipped)-1] != "D" {
		t.Fatalf("Skipped = %v, want dead site D flagged", res.Skipped)
	}
	errs, err := res.Briefcase.Folder(folder.ErrorFolder)
	if err != nil || errs.Len() == 0 {
		t.Fatalf("expected the all-dead flag in ERROR, got err=%v", err)
	}
}

// waitUp polls until the daemon answers pings.
func waitUp(t *testing.T, ctx context.Context, from *core.Site, dest vnet.SiteID) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		pctx, pcancel := context.WithTimeout(ctx, 250*time.Millisecond)
		err := from.Ping(pctx, dest, 0)
		pcancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("site %s never came up: %v", dest, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitCond polls cond with a generous deadline.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFlushCabinetDurability: the atomic flush leaves no temp residue and
// the renamed file is immediately loadable — the fsync-before-rename +
// directory-fsync discipline at least keeps the happy path intact (the
// crash half of the guarantee is the kernel's side of the contract).
func TestFlushCabinetFsyncPath(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cab.bin"
	net := vnet.NewNetwork()
	s := core.NewSite(net.AddNode("fsync-test"), core.SiteConfig{})
	s.Cabinet().AppendString("K", "v")
	if err := flushCabinet(s, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// Overwrite flush (rename over existing) must also succeed.
	s.Cabinet().AppendString("K", "v2")
	if err := flushCabinet(s, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s2 := core.NewSite(net.AddNode("fsync-test-2"), core.SiteConfig{})
	if err := s2.Cabinet().Load(f); err != nil {
		t.Fatal(err)
	}
	if s2.Cabinet().FolderLen("K") != 2 {
		t.Fatalf("K has %d elements", s2.Cabinet().FolderLen("K"))
	}
}
