// Command tacomad runs one TACOMA site as a network daemon speaking the
// TCP transport. Several tacomad processes (on one machine or many) form a
// TACOMA system: agents injected at any site can roam the rest.
//
// Usage:
//
//	tacomad -site site-0 -listen 127.0.0.1:7100 \
//	        -peer site-1=127.0.0.1:7101 -peer site-2=127.0.0.1:7102
//
// The daemon installs the standard system agents (ag_tacl, rexec, courier,
// diffusion), a mailbox, and the rear-guard machinery, and registers each
// -peer in the site-local SITES folder so diffusion agents can spread.
//
// Guard flags turn the daemon into a firewall site: -firewall rejects
// unsigned inbound agents, -enroll name=hexkey installs signature keys,
// -allow name=agents grants meet capabilities, -meter-steps/-activation-fee
// charge visiting agents electronic cash for cycles, and -auth-secret adds
// the HMAC handshake at the TCP transport layer:
//
//	tacomad -site fw -listen 127.0.0.1:7103 -firewall \
//	        -enroll alice=$(openssl rand -hex 32) -allow 'alice=ag_*' \
//	        -meter-steps 1000 -activation-fee 1 -auth-secret deadbeef
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/guard"
	"repro/internal/mail"
	"repro/internal/rearguard"
	"repro/internal/vnet"
)

type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("peer must be name=host:port, got %q", v)
	}
	*p = append(*p, v)
	return nil
}

// kvList collects repeatable name=value flags (-enroll, -allow).
type kvList []string

func (l *kvList) String() string { return strings.Join(*l, ",") }
func (l *kvList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("must be name=value, got %q", v)
	}
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	site := flag.String("site", "site-0", "this site's name")
	listen := flag.String("listen", "127.0.0.1:7100", "listen address")
	maxSteps := flag.Int("max-steps", 1<<20, "TacL step budget per agent activation")
	cabinetPath := flag.String("cabinet", "", "file to persist the site's file cabinet across restarts")
	var peers peerList
	flag.Var(&peers, "peer", "peer site as name=host:port (repeatable)")

	// Guard subsystem flags. Any of them installs a guard at the site.
	firewall := flag.Bool("firewall", false, "reject unsigned/unauthorized inbound agents at the network boundary")
	requireCash := flag.Bool("require-cash", false, "firewall additionally rejects agents carrying no electronic cash")
	authSecret := flag.String("auth-secret", "", "hex-encoded shared TCP authentication secret (HMAC handshake)")
	meterSteps := flag.Int("meter-steps", 0, "charge visiting agents 1 ECU per this many TacL steps (0 = no metering)")
	activationFee := flag.Int64("activation-fee", 0, "ECUs charged per metered activation")
	var enrolls, allows kvList
	flag.Var(&enrolls, "enroll", "principal=hexkey signature key (repeatable)")
	flag.Var(&allows, "allow", "principal=agent1,agent2 meet capability, globs ok (repeatable)")
	flag.Parse()

	ep, err := vnet.NewTCPEndpoint(vnet.SiteID(*site), *listen)
	if err != nil {
		log.Fatalf("tacomad: %v", err)
	}
	if *authSecret != "" {
		key, err := hex.DecodeString(*authSecret)
		if err != nil {
			log.Fatalf("tacomad: bad -auth-secret: %v", err)
		}
		ep.SetAuthKey(key)
	}
	s := core.NewSite(ep, core.SiteConfig{MaxSteps: *maxSteps})
	mail.InstallMailbox(s)
	rearguard.Install(s)

	if *firewall || *requireCash || *meterSteps > 0 || *activationFee > 0 ||
		len(enrolls) > 0 || len(allows) > 0 {
		g, err := buildGuard(*firewall, *requireCash, *meterSteps, *activationFee, enrolls, allows)
		if err != nil {
			log.Fatalf("tacomad: %v", err)
		}
		guard.Install(s, g)
		log.Printf("tacomad: guard installed (firewall=%v, metering=%v, principals=%v)",
			*firewall, g.Meter != nil, g.Keys.Principals())
	}

	// "File cabinets can be flushed to disk when permanence is required."
	if *cabinetPath != "" {
		if f, err := os.Open(*cabinetPath); err == nil {
			if err := s.Cabinet().Load(f); err != nil {
				log.Fatalf("tacomad: load cabinet %s: %v", *cabinetPath, err)
			}
			f.Close()
			log.Printf("tacomad: restored cabinet from %s (%d folders)", *cabinetPath, s.Cabinet().Len())
		} else if !os.IsNotExist(err) {
			log.Fatalf("tacomad: open cabinet %s: %v", *cabinetPath, err)
		}
	}

	for _, p := range peers {
		name, addr, _ := strings.Cut(p, "=")
		ep.AddPeer(vnet.SiteID(name), addr)
		s.Cabinet().TestAndAppendString(folder.SitesFolder, name)
	}

	log.Printf("tacomad: site %s listening on %s with %d peers, agents: %v",
		*site, ep.Addr(), len(peers), s.AgentNames())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("tacomad: site %s shutting down", *site)
	if err := ep.Close(); err != nil {
		log.Printf("tacomad: close: %v", err)
	}
	s.Wait()

	if *cabinetPath != "" {
		if err := flushCabinet(s, *cabinetPath); err != nil {
			log.Fatalf("tacomad: %v", err)
		}
		log.Printf("tacomad: cabinet flushed to %s", *cabinetPath)
	}
}

// buildGuard assembles the guard subsystem from the command-line flags.
func buildGuard(firewall, requireCash bool, meterSteps int, activationFee int64, enrolls, allows kvList) (*guard.Guard, error) {
	keys := guard.NewKeyring()
	for _, e := range enrolls {
		name, hexKey, _ := strings.Cut(e, "=")
		key, err := hex.DecodeString(hexKey)
		if err != nil {
			return nil, fmt.Errorf("bad -enroll key for %q: %w", name, err)
		}
		keys.Add(name, key)
	}
	policy := guard.NewPolicy()
	policy.SetFirewall(firewall)
	policy.SetRequireCash(requireCash)
	for _, a := range allows {
		name, agents, _ := strings.Cut(a, "=")
		var meet []string
		if agents != "" {
			meet = strings.Split(agents, ",")
		} else {
			meet = []string{}
		}
		policy.Grant(name, guard.Capability{Meet: meet})
	}
	g := guard.New(policy, keys)
	if meterSteps > 0 || activationFee > 0 {
		g.Meter = guard.NewMeter(meterSteps, activationFee)
	}
	return g, nil
}

// flushCabinet writes the cabinet atomically: temp file + rename.
func flushCabinet(s *core.Site, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("flush cabinet: %w", err)
	}
	if err := s.Cabinet().Flush(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("flush cabinet: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("flush cabinet: %w", err)
	}
	return os.Rename(tmp, path)
}
