// Command tacomad runs one TACOMA site as a network daemon speaking the
// TCP transport. Several tacomad processes (on one machine or many) form a
// TACOMA system: agents injected at any site can roam the rest.
//
// Usage:
//
//	tacomad -site site-0 -listen 127.0.0.1:7100 \
//	        -peer site-1=127.0.0.1:7101 -peer site-2=127.0.0.1:7102
//
// The daemon installs the standard system agents (ag_tacl, rexec, courier,
// diffusion), a mailbox, and the rear-guard machinery, and registers each
// -peer in the site-local SITES folder so diffusion agents can spread.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/mail"
	"repro/internal/rearguard"
	"repro/internal/vnet"
)

type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("peer must be name=host:port, got %q", v)
	}
	*p = append(*p, v)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	site := flag.String("site", "site-0", "this site's name")
	listen := flag.String("listen", "127.0.0.1:7100", "listen address")
	maxSteps := flag.Int("max-steps", 1<<20, "TacL step budget per agent activation")
	cabinetPath := flag.String("cabinet", "", "file to persist the site's file cabinet across restarts")
	var peers peerList
	flag.Var(&peers, "peer", "peer site as name=host:port (repeatable)")
	flag.Parse()

	ep, err := vnet.NewTCPEndpoint(vnet.SiteID(*site), *listen)
	if err != nil {
		log.Fatalf("tacomad: %v", err)
	}
	s := core.NewSite(ep, core.SiteConfig{MaxSteps: *maxSteps})
	mail.InstallMailbox(s)
	rearguard.Install(s)

	// "File cabinets can be flushed to disk when permanence is required."
	if *cabinetPath != "" {
		if f, err := os.Open(*cabinetPath); err == nil {
			if err := s.Cabinet().Load(f); err != nil {
				log.Fatalf("tacomad: load cabinet %s: %v", *cabinetPath, err)
			}
			f.Close()
			log.Printf("tacomad: restored cabinet from %s (%d folders)", *cabinetPath, s.Cabinet().Len())
		} else if !os.IsNotExist(err) {
			log.Fatalf("tacomad: open cabinet %s: %v", *cabinetPath, err)
		}
	}

	for _, p := range peers {
		name, addr, _ := strings.Cut(p, "=")
		ep.AddPeer(vnet.SiteID(name), addr)
		s.Cabinet().TestAndAppendString(folder.SitesFolder, name)
	}

	log.Printf("tacomad: site %s listening on %s with %d peers, agents: %v",
		*site, ep.Addr(), len(peers), s.AgentNames())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("tacomad: site %s shutting down", *site)
	if err := ep.Close(); err != nil {
		log.Printf("tacomad: close: %v", err)
	}
	s.Wait()

	if *cabinetPath != "" {
		if err := flushCabinet(s, *cabinetPath); err != nil {
			log.Fatalf("tacomad: %v", err)
		}
		log.Printf("tacomad: cabinet flushed to %s", *cabinetPath)
	}
}

// flushCabinet writes the cabinet atomically: temp file + rename.
func flushCabinet(s *core.Site, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("flush cabinet: %w", err)
	}
	if err := s.Cabinet().Flush(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("flush cabinet: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("flush cabinet: %w", err)
	}
	return os.Rename(tmp, path)
}
