// Command tacomad runs one TACOMA site as a network daemon speaking the
// TCP transport. Several tacomad processes (on one machine or many) form a
// TACOMA system: agents injected at any site can roam the rest.
//
// Usage:
//
//	tacomad -site site-0 -listen 127.0.0.1:7100 \
//	        -peer site-1=127.0.0.1:7101 -peer site-2=127.0.0.1:7102
//
// The daemon installs the standard system agents (ag_tacl, rexec, courier,
// diffusion), a mailbox, and the rear-guard machinery, and registers each
// -peer in the site-local SITES folder so diffusion agents can spread.
//
// A WAL-backed daemon (-wal) can be paired with a cold standby for
// failover: the leader adds -replica-listen name=host:port to ship its WAL
// to the standby in the background, and the standby runs with -replica-of
// leader -wal <dir> — refusing meets, landing shipped bytes durably, and
// promoting itself in place (guards re-armed, parked agents re-registered)
// when the leader dies:
//
//	tacomad -site L -listen 127.0.0.1:7100 -wal /var/l.wal \
//	        -replica-listen F=127.0.0.1:7200
//	tacomad -site F -listen 127.0.0.1:7200 -wal /var/f.wal \
//	        -replica-of L -peer L=127.0.0.1:7100
//
// Guard flags turn the daemon into a firewall site: -firewall rejects
// unsigned inbound agents, -enroll name=hexkey installs signature keys,
// -allow name=agents grants meet capabilities, -meter-steps/-activation-fee
// charge visiting agents electronic cash for cycles, and -auth-secret adds
// the HMAC handshake at the TCP transport layer:
//
//	tacomad -site fw -listen 127.0.0.1:7103 -firewall \
//	        -enroll alice=$(openssl rand -hex 32) -allow 'alice=ag_*' \
//	        -meter-steps 1000 -activation-fee 1 -auth-secret deadbeef
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/guard"
	"repro/internal/mail"
	"repro/internal/mesh"
	"repro/internal/rearguard"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/vnet"
)

type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("peer must be name=host:port, got %q", v)
	}
	*p = append(*p, v)
	return nil
}

// strList collects plain repeatable flags (-mesh-seed).
type strList []string

func (l *strList) String() string { return strings.Join(*l, ",") }
func (l *strList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// kvList collects repeatable name=value flags (-enroll, -allow).
type kvList []string

func (l *kvList) String() string { return strings.Join(*l, ",") }
func (l *kvList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("must be name=value, got %q", v)
	}
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	site := flag.String("site", "site-0", "this site's name")
	listen := flag.String("listen", "127.0.0.1:7100", "listen address")
	maxSteps := flag.Int("max-steps", 1<<20, "TacL step budget per agent activation")
	cabinetPath := flag.String("cabinet", "", "file to persist the site's file cabinet at shutdown (see -wal for crash durability)")
	walDir := flag.String("wal", "", "write-ahead-log directory: every cabinet mutation is crash-durable, recovered on boot (recommended over -cabinet)")
	flushInterval := flag.Duration("flush-interval", 0, "with -cabinet, also flush periodically at this interval (stopgap durability for non-WAL mode)")
	var peers peerList
	flag.Var(&peers, "peer", "peer site as name=host:port (repeatable)")

	// Mesh flags: -mesh-join makes the daemon a fleet member — gossip
	// membership plus consistent-hash agent placement, with misplaced meets
	// forwarded one hop to the ring owner.
	meshJoin := flag.Bool("mesh-join", false, "join the site mesh (gossip membership + agent placement)")
	meshInterval := flag.Duration("mesh-interval", 200*time.Millisecond, "mesh protocol period (probe interval)")
	var meshSeeds strList
	flag.Var(&meshSeeds, "mesh-seed", "mesh seed site name, must also be a -peer (repeatable)")

	// Replication flags: a leader ships its WAL to a standby
	// (-replica-listen names the standby); the standby runs with
	// -replica-of and promotes itself when the leader dies.
	replicaOf := flag.String("replica-of", "", "run as a cold standby replica of this leader site (must also be a -peer): shipped WAL bytes land in -wal, the leader is probed, and on its death this site promotes in place; requires -wal")
	replicaListen := flag.String("replica-listen", "", "ship this site's WAL to the standby replica listening at name=host:port; requires -wal")
	probeInterval := flag.Duration("replica-probe-interval", 250*time.Millisecond, "with -replica-of, the pause between leader-death probe rounds")

	// Guard subsystem flags. Any of them installs a guard at the site.
	firewall := flag.Bool("firewall", false, "reject unsigned/unauthorized inbound agents at the network boundary")
	requireCash := flag.Bool("require-cash", false, "firewall additionally rejects agents carrying no electronic cash")
	authSecret := flag.String("auth-secret", "", "hex-encoded shared TCP authentication secret (HMAC handshake)")
	meterSteps := flag.Int("meter-steps", 0, "charge visiting agents 1 ECU per this many TacL steps (0 = no metering)")
	activationFee := flag.Int64("activation-fee", 0, "ECUs charged per metered activation")
	var enrolls, allows kvList
	flag.Var(&enrolls, "enroll", "principal=hexkey signature key (repeatable)")
	flag.Var(&allows, "allow", "principal=agent1,agent2 meet capability, globs ok (repeatable)")
	flag.Parse()

	ep, err := vnet.NewTCPEndpoint(vnet.SiteID(*site), *listen)
	if err != nil {
		log.Fatalf("tacomad: %v", err)
	}
	if *authSecret != "" {
		key, err := hex.DecodeString(*authSecret)
		if err != nil {
			log.Fatalf("tacomad: bad -auth-secret: %v", err)
		}
		ep.SetAuthKey(key)
	}
	if *walDir != "" && *cabinetPath != "" {
		log.Fatalf("tacomad: -wal and -cabinet are alternative persistence modes; pick one")
	}
	if *flushInterval != 0 && *cabinetPath == "" {
		log.Fatalf("tacomad: -flush-interval needs -cabinet")
	}
	if *flushInterval < 0 {
		log.Fatalf("tacomad: -flush-interval must be positive, got %v", *flushInterval)
	}
	follower := *replicaOf != ""
	if follower && *replicaListen != "" {
		log.Fatalf("tacomad: -replica-of and -replica-listen are mutually exclusive (no chained replication)")
	}
	if follower && *walDir == "" {
		log.Fatalf("tacomad: -replica-of needs -wal (the replica directory)")
	}
	if *replicaListen != "" && *walDir == "" {
		log.Fatalf("tacomad: -replica-listen needs -wal (there is nothing to ship otherwise)")
	}

	// "File cabinets can be flushed to disk when permanence is required."
	// -wal is the recommended mode: every mutation is crash-durable via the
	// group-committed write-ahead log, and a restarted site replays
	// snapshot + log tail and re-arms its rear guards. Recovery runs
	// BEFORE the site exists: NewSite installs the network handler (calls
	// are refused until then), so no boot-window meet can be served — and
	// acknowledged — against a half-recovered, journal-less cabinet.
	// -cabinet remains as the legacy whole-image mode (shutdown flush,
	// optionally periodic).
	// A sticky sync failure means durability is gone for good (the WAL
	// refuses further commits); say so the moment it happens, loudly, not
	// just as an error on whichever meet next hits the Sync path.
	walOpt := store.Options{
		Logf: log.Printf,
		OnFailure: func(err error) {
			log.Printf("tacomad: WAL SYNC FAILURE (sticky): %v — durability is lost and further commits are refused; restart this site on a healthy disk", err)
		},
	}
	var wal *store.WAL
	siteCfg := core.SiteConfig{MaxSteps: *maxSteps}
	if follower {
		// Standby replicas are a disk, not a place agents run: refuse
		// every meet until promotion swaps in a live site.
		leader := *replicaOf
		siteCfg.Admission = func(agent, from string) error {
			return fmt.Errorf("standby replica of %s", leader)
		}
	} else if *walDir != "" {
		cab := folder.NewCabinet()
		var werr error
		wal, werr = store.Open(*walDir, cab, walOpt)
		if werr != nil {
			log.Fatalf("tacomad: open WAL %s: %v", *walDir, werr)
		}
		siteCfg.Cabinet = cab
		siteCfg.Durable = wal
	}

	s := core.NewSite(ep, siteCfg)
	mail.InstallMailbox(s)
	rgm := rearguard.Install(s)

	var g *guard.Guard
	if *firewall || *requireCash || *meterSteps > 0 || *activationFee > 0 ||
		len(enrolls) > 0 || len(allows) > 0 {
		var gerr error
		g, gerr = buildGuard(*firewall, *requireCash, *meterSteps, *activationFee, enrolls, allows)
		if gerr != nil {
			log.Fatalf("tacomad: %v", gerr)
		}
		guard.Install(s, g)
		log.Printf("tacomad: guard installed (firewall=%v, metering=%v, principals=%v)",
			*firewall, g.Meter != nil, g.Keys.Principals())
	}

	if wal != nil {
		guards := rgm.Recover()
		parked := s.RecoverParked()
		log.Printf("tacomad: WAL %s recovered (%d folders, %d rear guards re-armed, %d parked agents re-registered)",
			*walDir, s.Cabinet().Len(), guards, parked)
	}
	if *cabinetPath != "" {
		if f, err := os.Open(*cabinetPath); err == nil {
			if err := s.Cabinet().Load(f); err != nil {
				log.Fatalf("tacomad: load cabinet %s: %v", *cabinetPath, err)
			}
			f.Close()
			// A flushed image can hold rear-guard checkpoints too (they
			// live in ordinary cabinet folders); re-arm them just as the
			// WAL path does. Whole-image staleness applies here like it
			// does to every other folder in the image: a guard released
			// after the last flush is resurrected and may relaunch a
			// finished computation (the per-computation hop marks
			// deduplicate re-execution where they survived). -wal has no
			// such window.
			guards := rgm.Recover()
			parked := s.RecoverParked()
			log.Printf("tacomad: restored cabinet from %s (%d folders, %d rear guards re-armed, %d parked agents re-registered)",
				*cabinetPath, s.Cabinet().Len(), guards, parked)
		} else if !os.IsNotExist(err) {
			log.Fatalf("tacomad: open cabinet %s: %v", *cabinetPath, err)
		}
	}

	// Periodic stopgap flushes for non-WAL mode: bounded loss instead of
	// total loss when the process dies without a graceful signal.
	var flushWG sync.WaitGroup
	stopFlush := make(chan struct{})
	if *flushInterval > 0 {
		flushWG.Add(1)
		go func() {
			defer flushWG.Done()
			t := time.NewTicker(*flushInterval)
			defer t.Stop()
			for {
				select {
				case <-stopFlush:
					return
				case <-t.C:
					if err := flushCabinet(s, *cabinetPath); err != nil {
						log.Printf("tacomad: periodic flush: %v", err)
					}
				}
			}
		}()
	}

	for _, p := range peers {
		name, addr, _ := strings.Cut(p, "=")
		ep.AddPeer(vnet.SiteID(name), addr)
		s.Cabinet().TestAndAppendString(folder.SitesFolder, name)
	}

	if len(meshSeeds) > 0 && !*meshJoin {
		log.Fatalf("tacomad: -mesh-seed needs -mesh-join")
	}
	var m *mesh.Mesh
	var meshJoinWG sync.WaitGroup
	stopMeshJoin := make(chan struct{})
	if *meshJoin {
		known := make(map[string]bool, len(peers))
		for _, p := range peers {
			name, _, _ := strings.Cut(p, "=")
			known[name] = true
		}
		seeds := make([]vnet.SiteID, 0, len(meshSeeds))
		for _, seed := range meshSeeds {
			if !known[seed] {
				log.Fatalf("tacomad: -mesh-seed %s is not a -peer", seed)
			}
			seeds = append(seeds, vnet.SiteID(seed))
		}
		m = mesh.New(s, mesh.Config{
			Seeds:         seeds,
			ProbeInterval: *meshInterval,
			Logf:          log.Printf,
		})
		// Seeds may come up after us; keep retrying the join until one
		// answers, then let the protocol take over.
		meshJoinWG.Add(1)
		go func() {
			defer meshJoinWG.Done()
			for {
				err := m.Join(context.Background())
				if err == nil {
					log.Printf("tacomad: mesh joined, %d members known", len(m.Alive()))
					return
				}
				log.Printf("tacomad: mesh join: %v (retrying)", err)
				select {
				case <-stopMeshJoin:
					return
				case <-time.After(2 * *meshInterval):
				}
			}
		}()
		m.Start()
	}

	// Replication wiring. The leader ships asynchronously in the
	// background; the follower serves the repl lane and watches the leader,
	// promoting itself in place when the leader dies.
	var ldr *repl.Leader
	var fol *repl.Follower
	promoted := make(chan *repl.Takeover, 1)
	if *replicaListen != "" {
		name, addr, ok := strings.Cut(*replicaListen, "=")
		if !ok || name == "" || addr == "" {
			log.Fatalf("tacomad: -replica-listen must be name=host:port, got %q", *replicaListen)
		}
		ep.AddPeer(vnet.SiteID(name), addr)
		ldr = repl.StartLeader(ep, wal, repl.LeaderConfig{
			Follower: vnet.SiteID(name),
			Logf:     log.Printf,
		})
		log.Printf("tacomad: shipping WAL %s to standby %s at %s", *walDir, name, addr)
	}
	if follower {
		leader := vnet.SiteID(*replicaOf)
		known := false
		for _, p := range peers {
			if name, _, _ := strings.Cut(p, "="); name == *replicaOf {
				known = true
			}
		}
		if !known {
			log.Fatalf("tacomad: -replica-of %s is not a -peer", *replicaOf)
		}
		var ferr error
		fol, ferr = repl.NewFollower(s, repl.FollowerConfig{
			Dir:           *walDir,
			Leader:        leader,
			ProbeInterval: *probeInterval,
			Logf:          log.Printf,
		})
		if ferr != nil {
			log.Fatalf("tacomad: open replica %s: %v", *walDir, ferr)
		}
		promote := func() {
			log.Printf("tacomad: leader %s declared dead; promoting", leader)
			tk, err := fol.Promote(core.SiteConfig{MaxSteps: *maxSteps}, walOpt, nil)
			if err != nil {
				log.Printf("tacomad: promote: %v", err)
				return
			}
			mail.InstallMailbox(tk.Site)
			if g != nil {
				guard.Install(tk.Site, g)
			}
			log.Printf("tacomad: PROMOTED in place of %s (%d folders, %d rear guards re-armed, %d parked agents re-registered)",
				leader, tk.Cabinet.Len(), tk.RearmedGuards, tk.Parked)
			promoted <- tk
		}
		fol.StartProbe(promote)
		if m != nil {
			// A mesh death verdict beats the local probe when gossip
			// converges first; both funnel into the same once-only
			// trigger. Only a leader previously seen alive counts — the
			// thin membership before gossip converges must not promote.
			var seen atomic.Bool
			m.OnChange(func(alive []vnet.SiteID) {
				for _, a := range alive {
					if a == leader {
						seen.Store(true)
						return
					}
				}
				if seen.Load() {
					fol.LeaderDead(promote)
				}
			})
		}
		log.Printf("tacomad: standby replica of %s (replica dir %s, probe every %v)",
			leader, *walDir, *probeInterval)
	}

	log.Printf("tacomad: site %s listening on %s with %d peers, agents: %v",
		*site, ep.Addr(), len(peers), s.AgentNames())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for wait := true; wait; {
		select {
		case <-sig:
			wait = false
		case tk := <-promoted:
			// Promotion in place: the promoted site owns the endpoint and
			// its WAL from here on; keep serving until a signal arrives.
			s, wal = tk.Site, tk.WAL
		}
	}
	log.Printf("tacomad: site %s shutting down", *site)
	// Shutdown failures are logged, never fatal: each cleanup step must run
	// even when an earlier one fails. Ordering matters: everything that
	// needs the endpoint — the mesh goodbye, the replication drain, and the
	// durability barrier for already-acked meets — runs before ep.Close.
	close(stopMeshJoin)
	meshJoinWG.Wait()
	if m != nil {
		// Announce a graceful departure so the fleet removes this site
		// immediately instead of waiting out a suspicion timeout.
		leaveCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		m.Leave(leaveCtx)
		cancel()
		m.Stop()
	}
	if ldr != nil {
		// Hand the standby the full tail while the wire still exists; a
		// graceful shutdown should leave a promotable replica behind.
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := ldr.Drain(drainCtx); err != nil {
			log.Printf("tacomad: replica drain: %v", err)
		}
		cancel()
		ldr.Stop()
	}
	if wal != nil {
		// Final sync BEFORE the endpoint closes: every meet acked over the
		// wire is on disk by the time peers see the connection die.
		if err := wal.Sync(); err != nil {
			log.Printf("tacomad: final WAL sync: %v", err)
		}
	}
	if err := ep.Close(); err != nil {
		log.Printf("tacomad: close: %v", err)
	}
	s.Wait()
	if fol != nil {
		if err := fol.Close(); err != nil {
			log.Printf("tacomad: close replica: %v", err)
		}
	}
	close(stopFlush)
	flushWG.Wait()

	if wal != nil {
		if err := wal.Close(); err != nil {
			log.Printf("tacomad: close WAL: %v", err)
		} else {
			log.Printf("tacomad: WAL %s synced", *walDir)
		}
	}
	if *cabinetPath != "" {
		if err := flushCabinet(s, *cabinetPath); err != nil {
			log.Printf("tacomad: shutdown flush: %v", err)
		} else {
			log.Printf("tacomad: cabinet flushed to %s", *cabinetPath)
		}
	}
}

// buildGuard assembles the guard subsystem from the command-line flags.
func buildGuard(firewall, requireCash bool, meterSteps int, activationFee int64, enrolls, allows kvList) (*guard.Guard, error) {
	keys := guard.NewKeyring()
	for _, e := range enrolls {
		name, hexKey, _ := strings.Cut(e, "=")
		key, err := hex.DecodeString(hexKey)
		if err != nil {
			return nil, fmt.Errorf("bad -enroll key for %q: %w", name, err)
		}
		keys.Add(name, key)
	}
	policy := guard.NewPolicy()
	policy.SetFirewall(firewall)
	policy.SetRequireCash(requireCash)
	for _, a := range allows {
		name, agents, _ := strings.Cut(a, "=")
		var meet []string
		if agents != "" {
			meet = strings.Split(agents, ",")
		} else {
			meet = []string{}
		}
		policy.Grant(name, guard.Capability{Meet: meet})
	}
	g := guard.New(policy, keys)
	if meterSteps > 0 || activationFee > 0 {
		g.Meter = guard.NewMeter(meterSteps, activationFee)
	}
	return g, nil
}

// flushMu serializes flushCabinet calls: the periodic flusher and the
// shutdown flush share one temp-file path.
var flushMu sync.Mutex

// flushCabinet writes the cabinet atomically and durably via the store
// engine's shared temp-file + fsync + rename + directory-fsync discipline.
// Without the fsyncs the atomic-rename intent is hollow — a crash shortly
// after rename can surface an empty target (data never flushed) or no
// target at all (rename never journaled).
func flushCabinet(s *core.Site, path string) error {
	flushMu.Lock()
	defer flushMu.Unlock()
	if err := store.WriteFileAtomic(path, true, func(w io.Writer) error {
		return s.Cabinet().Flush(w)
	}); err != nil {
		return fmt.Errorf("flush cabinet: %w", err)
	}
	return nil
}
