// Command experiments regenerates every result table in EXPERIMENTS.md:
// one table per paper claim (E1..E10 in DESIGN.md). Run with:
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -only e2   # one experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only this experiment (e1..e10)")
	flag.Parse()
	ctx := context.Background()

	runs := []struct {
		name string
		fn   func(context.Context) error
	}{
		{"e1", e1}, {"e2", e2}, {"e5", e5}, {"e6", e6},
		{"e7", e7}, {"e8", e8}, {"e9", e9}, {"e10", e10},
		{"e11", e11},
	}
	for _, r := range runs {
		if *only != "" && !strings.EqualFold(*only, r.name) {
			continue
		}
		if err := r.fn(ctx); err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Println()
	}
}

func header(title string) {
	fmt.Println("## " + title)
	fmt.Println()
}

func e1(ctx context.Context) error {
	header("E1 — bandwidth: roaming filter agent vs client-server pull (§1)")
	rows, err := experiments.E1Sweep(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("| sites | records/site | record B | selectivity | agent B | client B | client/agent |\n")
	fmt.Printf("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %d | %d | %d | %.2f | %d | %d | %.2fx |\n",
			r.Sites, r.Records, r.RecordBytes, r.Selectivity, r.AgentBytes, r.ClientBytes, r.Ratio())
	}
	return nil
}

func e2(ctx context.Context) error {
	header("E2 — flooding termination via site-local folders (§2)")
	rows, err := experiments.E2Sweep(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("| variant | topology | sites | ttl | activations | delivered | duplicates | bytes |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		ttl := "-"
		if r.TTL > 0 {
			ttl = fmt.Sprint(r.TTL)
		}
		fmt.Printf("| %s | %s | %d | %s | %d | %d | %d | %d |\n",
			r.Variant, r.Topology, r.Sites, ttl, r.Activations, r.Delivered, r.Duplicates, r.Bytes)
	}
	return nil
}

func e5(ctx context.Context) error {
	header("E5 — double spending foiled by the validation agent (§3)")
	fmt.Printf("| transfers | replay rate | double-spends w/ validator | w/o validator | frauds logged |\n")
	fmt.Printf("|---|---|---|---|---|\n")
	for _, p := range []float64{0.1, 0.3, 0.5} {
		row, err := experiments.E5DoubleSpend(ctx, 500, p, 5)
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %.1f | %d | %d | %d |\n",
			row.Transfers, row.ReplayRate, row.WithValidator, row.Naive, row.FraudsCaught)
	}
	return nil
}

func e6(ctx context.Context) error {
	header("E6 — audit protocol identifies every contract violator (§3)")
	rows, err := experiments.E6AuditMatrix(ctx, 10)
	if err != nil {
		return err
	}
	fmt.Printf("| behavior | runs | correct verdicts |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d |\n", r.Behavior, r.Runs, r.Correct)
	}
	return nil
}

func e7(ctx context.Context) error {
	header("E7 — broker scheduling vs random placement; report staleness ablation (§4)")
	rows, err := experiments.E7Sweep()
	if err != nil {
		return err
	}
	fmt.Printf("| policy | jobs | providers | report every k | imbalance (1.0 = ideal) |\n")
	fmt.Printf("|---|---|---|---|---|\n")
	for _, r := range rows {
		k := "-"
		if r.Policy == "broker" {
			k = fmt.Sprint(r.StalenessK)
		}
		fmt.Printf("| %s | %d | %d | %s | %.2f |\n", r.Policy, r.Jobs, r.Providers, k, r.Imbalance)
	}
	return nil
}

func e8(ctx context.Context) error {
	header("E8 — rear guards let computations survive site failures (§5)")
	fmt.Printf("| guards | trials | crash prob | completed | relaunches | mean time |\n")
	fmt.Printf("|---|---|---|---|---|---|\n")
	for _, guards := range []bool{false, true} {
		for _, p := range []float64{0.5, 1.0} {
			row, err := experiments.E8Survival(ctx, 20, 5, p, guards, 21)
			if err != nil {
				return err
			}
			fmt.Printf("| %v | %d | %.1f | %d | %d | %v |\n",
				guards, row.Trials, p, row.Completed, row.Relaunches, row.MeanTime.Round(time.Millisecond))
		}
	}
	fmt.Println()
	fmt.Println("ablation: guard detection interval vs recovery latency (guaranteed mid-journey crash)")
	fmt.Printf("| interval | trials | completed | mean completion time |\n|---|---|---|---|\n")
	abl, err := experiments.E8IntervalAblation(ctx, 5, 4,
		[]time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond}, 31)
	if err != nil {
		return err
	}
	for _, r := range abl {
		fmt.Printf("| %v | %d | %d | %v |\n", r.Interval, r.Trials, r.Completed, r.MeanTime.Round(time.Millisecond))
	}
	return nil
}

func e9(ctx context.Context) error {
	header("E9 — StormCast: filtering at the data site (§6)")
	rows, err := experiments.E9Sweep(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("| grid | window | agent B | pull B | pull/agent | forecasts agree | accuracy |\n")
	fmt.Printf("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		ratio := float64(r.PullBytes) / float64(r.AgentBytes)
		fmt.Printf("| %s | %d | %d | %d | %.2fx | %v | %.0f%% |\n",
			r.Grid, r.Window, r.AgentBytes, r.PullBytes, ratio, r.Agree, r.AccuracyPct)
	}
	return nil
}

func e10(ctx context.Context) error {
	header("E10 — agent-structured mail (§6)")
	fmt.Printf("| users | messages | receipts | delivered | msgs/sec |\n|---|---|---|---|---|\n")
	for _, receipts := range []bool{false, true} {
		row, err := experiments.E10Mail(ctx, 6, 60, receipts)
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %v | %d | %.0f |\n",
			row.Users, row.Messages, row.Receipts, row.Delivered, row.MsgPerSec)
	}
	return nil
}

func e11(ctx context.Context) error {
	header("E11 — security & accountability: firewall sites, capability ACLs, metered meets (§3)")
	rows, err := experiments.E11Sweep(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("| budget | unsigned rejected | forged rejected | ACL blocked | honest done | runaway killed | site earned | bills at home | money intact |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %d | %v | %v | %v | %v | %v | %d | %d | %v |\n",
			r.RunawayBudget, r.UnsignedRejected, r.ForgedRejected, r.ACLBlocked,
			r.HonestCompleted, r.RunawayTerminated, r.SiteEarned, r.BillingAtHome,
			r.MoneySupplyIntact)
	}
	return nil
}
