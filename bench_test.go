// Benchmarks regenerating the paper experiments, one per claim (see the
// experiment index in DESIGN.md). The heavy lifting lives in
// internal/experiments; these benches report the headline numbers as
// custom metrics so `go test -bench=. -benchmem` reproduces the recorded
// results.
package tacoma

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/folder"
	"repro/internal/vnet"
)

// --- E1: bandwidth, roaming filter agent vs client-server pull (§1) ---

func BenchmarkE1BandwidthAgentVsClientServer(b *testing.B) {
	for _, rb := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("recordBytes=%d", rb), func(b *testing.B) {
			var row experiments.E1Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.E1Bandwidth(context.Background(), 8, 50, rb, 0.05)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.AgentBytes), "agentB")
			b.ReportMetric(float64(row.ClientBytes), "clientB")
			b.ReportMetric(row.Ratio(), "client/agent")
		})
	}
}

// --- E2: flooding termination (§2) ---

func BenchmarkE2FloodingTermination(b *testing.B) {
	cases := []struct {
		name    string
		variant string
		ttl     int
	}{
		{"naive-ttl6", "naive", 6},
		{"briefcase", "briefcase", 0},
		{"marking", "marking", 0},
		{"diffusion", "diffusion", 0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var row experiments.E2Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.E2Flood(context.Background(), tc.variant, "ring", 8, tc.ttl)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.Activations), "activations")
			b.ReportMetric(float64(row.Delivered), "delivered")
			b.ReportMetric(float64(row.Bytes), "netBytes")
		})
	}
}

// --- E3: folders are cheap to move; cabinets are fast to access (§2) ---

func BenchmarkE3FolderMoveVsCabinetAccess(b *testing.B) {
	for _, size := range []int{64, 1024, 65536} {
		payload := bytes.Repeat([]byte("w"), size)
		f := folder.Of(payload, payload, payload, payload)
		b.Run(fmt.Sprintf("folderMove/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc := folder.EncodeFolder(f)
				if _, err := folder.DecodeFolder(enc); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(4 * size))
		})
	}
	cab := folder.NewCabinet()
	for i := 0; i < 10000; i++ {
		cab.AppendString("BIG", fmt.Sprintf("element-%d", i))
	}
	b.Run("cabinetContains/10k-elements", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !cab.ContainsString("BIG", "element-9999") {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("cabinetTestAndAppend", func(b *testing.B) {
		c := folder.NewCabinet()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.TestAndAppendString("V", fmt.Sprintf("s%d", i))
		}
	})
}

// --- E4: meet as the sole IPC primitive (§2) ---

func BenchmarkE4MeetRexecCourier(b *testing.B) {
	newSys := func() *core.System {
		return core.NewSystem(3, core.SystemConfig{Seed: 4})
	}
	b.Run("localMeet", func(b *testing.B) {
		sys := newSys()
		sys.SiteAt(0).Register("noop", core.AgentFunc(
			func(*core.MeetContext, *folder.Briefcase) error { return nil }))
		bc := folder.NewBriefcase()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.SiteAt(0).MeetClient(context.Background(), "noop", bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remoteMeet", func(b *testing.B) {
		sys := newSys()
		sys.SiteAt(1).Register("noop", core.AgentFunc(
			func(*core.MeetContext, *folder.Briefcase) error { return nil }))
		bc := folder.NewBriefcase()
		bc.PutString("PAYLOAD", "x")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.SiteAt(0).RemoteMeet(context.Background(), "site-1", "noop", bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rexecHop", func(b *testing.B) {
		sys := newSys()
		sys.SiteAt(1).Register("noop", core.AgentFunc(
			func(*core.MeetContext, *folder.Briefcase) error { return nil }))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc := folder.NewBriefcase()
			bc.PutString(folder.HostFolder, "site-1")
			bc.PutString(folder.ContactFolder, "noop")
			if err := sys.SiteAt(0).MeetClient(context.Background(), core.AgRexec, bc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taclAgentActivation", func(b *testing.B) {
		sys := newSys()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunScript(context.Background(), sys.SiteAt(0),
				`bc_push RESULT [expr {1 + 1}]`, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taclJumpMigration", func(b *testing.B) {
		sys := newSys()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunScript(context.Background(), sys.SiteAt(0), `
				if {[host] eq "site-0"} { jump site-1 }
			`, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("diffusionRing8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := core.NewSystem(8, core.SystemConfig{Seed: 4})
			sys.Ring()
			bc := folder.NewBriefcase()
			b.StartTimer()
			if err := sys.SiteAt(0).MeetClient(context.Background(), core.AgDiffusion, bc); err != nil {
				b.Fatal(err)
			}
			sys.Wait()
		}
	})
}

// --- E5: double spending (§3) ---

func BenchmarkE5DoubleSpend(b *testing.B) {
	var row experiments.E5Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.E5DoubleSpend(context.Background(), 500, 0.3, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.WithValidator), "acceptedWithValidator")
	b.ReportMetric(float64(row.Naive), "acceptedNaive")
	b.ReportMetric(float64(row.FraudsCaught), "fraudsCaught")
}

// --- E6: audit protocol (§3) ---

func BenchmarkE6AuditProtocol(b *testing.B) {
	correct, total := 0, 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E6AuditMatrix(context.Background(), 2)
		if err != nil {
			b.Fatal(err)
		}
		correct, total = 0, 0
		for _, r := range rows {
			correct += r.Correct
			total += r.Runs
		}
	}
	b.ReportMetric(float64(correct)/float64(total)*100, "verdictAccuracy%")
}

// --- E7: broker load balance (§4) ---

func BenchmarkE7BrokerLoadBalance(b *testing.B) {
	caps := []int64{8, 4, 2, 1, 1}
	for _, tc := range []struct {
		name   string
		policy string
		k      int
	}{
		{"random", "random", 0},
		{"round-robin", "round-robin", 0},
		{"broker-fresh", "broker", 1},
		{"broker-stale64", "broker", 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var row experiments.E7Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.E7Placement(tc.policy, 400, caps, tc.k, 7)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Imbalance, "imbalance")
		})
	}
}

// --- E8: rear-guard survival (§5) ---

func BenchmarkE8RearGuardSurvival(b *testing.B) {
	for _, guards := range []bool{false, true} {
		b.Run(fmt.Sprintf("guards=%v", guards), func(b *testing.B) {
			completed, trials, relaunches := 0, 0, 0
			for i := 0; i < b.N; i++ {
				row, err := experiments.E8Survival(context.Background(), 5, 4, 1.0, guards, int64(21+i))
				if err != nil {
					b.Fatal(err)
				}
				completed += row.Completed
				trials += row.Trials
				relaunches += row.Relaunches
			}
			b.ReportMetric(float64(completed)/float64(trials)*100, "completed%")
			b.ReportMetric(float64(relaunches)/float64(trials), "relaunches/trial")
		})
	}
}

// Ablation: guard detection interval vs recovery latency.
func BenchmarkE8GuardIntervalAblation(b *testing.B) {
	for _, interval := range []time.Duration{5 * time.Millisecond, 40 * time.Millisecond} {
		b.Run(fmt.Sprintf("interval=%v", interval), func(b *testing.B) {
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := experiments.E8IntervalAblation(context.Background(), 2, 4,
					[]time.Duration{interval}, int64(31+i))
				if err != nil {
					b.Fatal(err)
				}
				mean = rows[0].MeanTime
			}
			b.ReportMetric(float64(mean.Milliseconds()), "recoveryMs")
		})
	}
}

// --- E9: StormCast (§6) ---

func BenchmarkE9StormCast(b *testing.B) {
	for _, window := range []int{5, 50, 150} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			var row experiments.E9Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.E9StormCast(context.Background(), 4, 4, window)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.AgentBytes), "agentB")
			b.ReportMetric(float64(row.PullBytes), "pullB")
			b.ReportMetric(row.AccuracyPct, "accuracy%")
		})
	}
}

// --- E10: agent mail (§6) ---

func BenchmarkE10AgentMail(b *testing.B) {
	for _, receipts := range []bool{false, true} {
		b.Run(fmt.Sprintf("receipts=%v", receipts), func(b *testing.B) {
			var row experiments.E10Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.E10Mail(context.Background(), 4, 40, receipts)
				if err != nil {
					b.Fatal(err)
				}
				if row.Delivered != 40 {
					b.Fatalf("delivered %d/40", row.Delivered)
				}
			}
			b.ReportMetric(row.MsgPerSec, "msgs/sec")
		})
	}
}

// --- E11: guard interception overhead on the meet path (§3) ---

// BenchmarkGuardedMeet quantifies what the security subsystem costs per
// meet against the unguarded baseline (compare with E4 localMeet). The
// guarded variants must stay within ~15% of unguarded: the per-meet check
// is a SIG parse plus a capability lookup — no crypto, which happens once
// per network arrival instead.
func BenchmarkGuardedMeet(b *testing.B) {
	noop := core.AgentFunc(func(*core.MeetContext, *folder.Briefcase) error { return nil })
	run := func(b *testing.B, s *Site, bc *Briefcase) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.MeetClient(context.Background(), "noop", bc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unguarded", func(b *testing.B) {
		sys := core.NewSystem(1, core.SystemConfig{Seed: 4})
		sys.SiteAt(0).Register("noop", noop)
		run(b, sys.SiteAt(0), NewBriefcase())
	})
	b.Run("guarded-unsigned", func(b *testing.B) {
		sys := core.NewSystem(1, core.SystemConfig{Seed: 4})
		sys.SiteAt(0).Register("noop", noop)
		InstallGuard(sys.SiteAt(0), NewGuard(nil, NewKeyring()))
		run(b, sys.SiteAt(0), NewBriefcase())
	})
	b.Run("guarded-signed-acl", func(b *testing.B) {
		sys := core.NewSystem(1, core.SystemConfig{Seed: 4})
		sys.SiteAt(0).Register("noop", noop)
		keys := NewKeyring()
		keys.Enroll("alice")
		policy := NewPolicy()
		policy.Grant("alice", Capability{Meet: []string{"noop"}})
		InstallGuard(sys.SiteAt(0), NewGuard(policy, keys))
		bc := NewBriefcase()
		bc.PutString("DATA", "payload")
		if err := SignBriefcase(keys, "alice", bc, "DATA"); err != nil {
			b.Fatal(err)
		}
		run(b, sys.SiteAt(0), bc)
	})
	b.Run("guarded-metered", func(b *testing.B) {
		// The full accountability path: a signed, funded TacL activation
		// under a meter, measured against taclAgentActivation in E4.
		sys := core.NewSystem(1, core.SystemConfig{Seed: 4})
		keys := NewKeyring()
		keys.Enroll("alice")
		g := NewGuard(NewPolicy(), keys)
		g.Meter = NewMeter(1000, 0)
		InstallGuard(sys.SiteAt(0), g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc, err := SignedScript(keys, "alice", "", `bc_push RESULT [expr {1 + 1}]`, nil)
			if err != nil {
				b.Fatal(err)
			}
			bc.Put(CashFolder, NewFolder())
			if err := LaunchSigned(context.Background(), sys.SiteAt(0), bc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Facade sanity: the public API drives a full roam over TCP too ---

func BenchmarkFacadeRoamSimVsTCP(b *testing.B) {
	b.Run("simulated", func(b *testing.B) {
		sys := NewSystem(2, SystemConfig{Seed: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunScript(context.Background(), sys.SiteAt(0), `
				if {[host] eq "site-0"} { jump site-1 }
				bc_push RESULT done
			`, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		epA, err := NewTCPEndpoint("site-a", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer epA.Close()
		epB, err := NewTCPEndpoint("site-b", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer epB.Close()
		epA.AddPeer("site-b", epB.Addr())
		epB.AddPeer("site-a", epA.Addr())
		siteA := NewSite(epA, SiteConfig{})
		NewSite(epB, SiteConfig{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunScript(context.Background(), siteA, `
				if {[host] eq "site-a"} { jump site-b }
				bc_push RESULT done
			`, nil); err != nil {
				b.Fatal(err)
			}
		}
		_ = vnet.SiteID("")
	})
}
