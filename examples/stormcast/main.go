// StormCast: the paper's severe-storm prediction application over a
// synthetic Arctic sensor field.
//
// A 4×4 grid of sensor sites each generates local weather observations. A
// collector agent roams the grid, reduces each site's observation window
// to a summary at the data's site, and an expert system turns the carried
// summaries into a storm forecast. The same forecast computed
// client-server style (pulling raw data) moves an order of magnitude more
// bytes. Run with:
//
//	go run ./examples/stormcast
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stormcast"
)

func main() {
	const (
		w, h   = 4, 4
		window = 60 // observations per sensor per forecast
	)
	field := stormcast.NewField(w, h, 1995, core.SystemConfig{})
	defer field.Sys.Wait()
	expert := stormcast.DefaultExpert()
	ctx := context.Background()

	// Early on the sensors have little history, so pulling raw data is
	// cheap and the roaming agent's fixed briefcase overhead dominates; as
	// observation windows fill, raw data grows and filtering at the data
	// site wins — the paper's bandwidth-conservation claim, with its
	// crossover made visible.
	fmt.Printf("%-4s  %-8s  %-8s  %-12s  %-12s\n", "t", "truth", "forecast", "agent-bytes", "pull-bytes")
	for t := 0; t <= 60; t += 5 {
		field.Sys.Net.ResetStats()
		fc, err := stormcast.RoamingForecast(ctx, field.Home, field.Sites, t, window, expert)
		if err != nil {
			log.Fatalf("stormcast: %v", err)
		}
		agentBytes := field.Sys.Net.Stats().BytesTotal

		field.Sys.Net.ResetStats()
		central, err := stormcast.CentralForecast(ctx, field.Home, field.Sites, t, window, expert)
		if err != nil {
			log.Fatalf("stormcast: %v", err)
		}
		pullBytes := field.Sys.Net.Stats().BytesTotal
		if central.Storm != fc.Storm {
			log.Fatalf("strategies disagree at t=%d", t)
		}

		truth := field.Model.StormInWindow(t, window)
		fmt.Printf("%-4d  %-8v  %-8v  %-12d  %-12d\n", t, truth, fc.Storm, agentBytes, pullBytes)
	}

	acc, err := field.Accuracy(ctx, 0, 24, window, expert, stormcast.RoamingForecast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforecast accuracy over 24 steps: %.0f%%\n", acc*100)
}
