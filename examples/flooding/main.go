// Flooding: section 2's motivating example for site-local folders.
//
// Delivering a message at all sites by cloning agents at every neighbour
// grows the agent population without bound on cyclic topologies. If each
// agent instead records its visit in a site-local folder and terminates
// when the site has been seen, the flood stops after exactly one
// activation per site. This example runs both variants on a ring and
// prints the activation counts; the diffusion system agent is the
// well-behaved version packaged as a service. Run with:
//
//	go run ./examples/flooding
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/folder"
)

// naiveFlood clones itself to every neighbour unconditionally; a TTL keeps
// the demonstration finite (without it the flood never terminates on a
// cycle).
const naiveFlood = `
	cab_append DELIVERED msg
	set ttl [bc_pop TTL]
	if {$ttl > 0} {
		foreach n [neighbors] {
			bc_push TTL [expr {$ttl - 1}]
			spawn $n
			bc_pop TTL
		}
	}
`

// markingFlood is the paper's fix: record the visit in a site-local
// folder and terminate (instead of cloning) when the site was already
// visited.
const markingFlood = `
	if {[cab_visit VISITED msg]} {
		cab_append DELIVERED msg
		foreach n [neighbors] {
			spawn $n
		}
	}
`

func runFlood(script string, n, ttl int) (activations int64, delivered int, duplicates int) {
	sys := core.NewSystem(n, core.SystemConfig{Seed: 1})
	sys.Ring()
	bc := folder.NewBriefcase()
	if ttl > 0 {
		bc.PutString("TTL", fmt.Sprint(ttl))
	}
	if _, err := core.RunScript(context.Background(), sys.SiteAt(0), script, bc); err != nil {
		log.Fatalf("flood: %v", err)
	}
	sys.Wait()
	for i := 0; i < sys.Len(); i++ {
		d := sys.SiteAt(i).Cabinet().FolderLen("DELIVERED")
		if d > 0 {
			delivered++
		}
		if d > 1 {
			duplicates += d - 1
		}
	}
	return sys.TotalActivations(), delivered, duplicates
}

func main() {
	const n = 8
	fmt.Printf("ring of %d sites\n\n", n)
	fmt.Printf("%-22s  %-12s  %-10s  %-10s\n", "variant", "activations", "delivered", "duplicates")

	for _, ttl := range []int{4, 6, 8} {
		a, d, dup := runFlood(naiveFlood, n, ttl)
		fmt.Printf("naive clone (ttl=%d)     %-12d  %-10d  %-10d\n", ttl, a, d, dup)
	}
	a, d, dup := runFlood(markingFlood, n, 0)
	fmt.Printf("%-22s  %-12d  %-10d  %-10d\n", "site-local marking", a, d, dup)

	// The packaged version: the diffusion system agent.
	sys := core.NewSystem(n, core.SystemConfig{Seed: 1})
	sys.Ring()
	sys.Register("deliver", func(s *core.Site) core.Agent {
		return core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			mc.Site.Cabinet().AppendString("DELIVERED", "msg")
			return nil
		})
	})
	bc := folder.NewBriefcase()
	bc.PutString(folder.ContactFolder, "deliver")
	if err := sys.SiteAt(0).MeetClient(context.Background(), core.AgDiffusion, bc); err != nil {
		log.Fatal(err)
	}
	sys.Wait()
	covered, _ := bc.Folder(folder.SitesFolder)
	fmt.Printf("%-22s  %-12d  %-10d  %-10d\n", "diffusion agent", sys.TotalActivations(), covered.Len(), 0)
}
