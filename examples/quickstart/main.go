// Quickstart: three sites, one roaming TacL agent.
//
// The agent visits every site in turn, records its trail in the briefcase,
// asks each site's cabinet whether anyone visited before, and comes home
// with the evidence. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	sys := tacoma.NewSystem(3, tacoma.SystemConfig{Seed: 1})
	defer sys.Wait()

	// A native Go service agent, registered at every site: agents meet it
	// to get the site's motto.
	sys.Register("motto", func(s *tacoma.Site) tacoma.Agent {
		return tacoma.AgentFunc(func(mc *tacoma.MeetContext, bc *tacoma.Briefcase) error {
			bc.Ensure("MOTTOS").PushString(fmt.Sprintf("greetings from %s", s.ID()))
			return nil
		})
	})

	// The roaming agent: TacL source travels in the CODE folder; `jump`
	// re-ships it via the rexec system agent. Variables do not survive a
	// jump — state lives in the briefcase. That is restart-style
	// migration, exactly as in the paper's Tcl prototype.
	script := `
		bc_push TRAIL [host]
		cab_visit VISITORS roamer
		meet motto
		if {[host] eq "site-0"} { jump site-1 }
		if {[host] eq "site-1"} { jump site-2 }
		bc_push RESULT "roamed [bc_len TRAIL] sites"
	`
	bc, err := tacoma.RunScript(context.Background(), sys.SiteAt(0), script, nil)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	trail, _ := bc.Folder("TRAIL")
	fmt.Println("trail:  ", trail.Strings())
	mottos, _ := bc.Folder("MOTTOS")
	for _, m := range mottos.Strings() {
		fmt.Println("motto:  ", m)
	}
	result, _ := bc.GetString(tacoma.ResultFolder)
	fmt.Println("result: ", result)

	// Site-local state stayed behind: each cabinet recorded the visit.
	for i := 0; i < sys.Len(); i++ {
		s := sys.SiteAt(i)
		fmt.Printf("cabinet %s: VISITORS=%v\n", s.ID(), s.Cabinet().Snapshot("VISITORS").Strings())
	}
}
