// Firewall: the security and accountability story end to end.
//
// Three sites. site-1 is a firewall: it rejects unsigned agents at the
// network boundary, enforces a capability ACL on what admitted agents may
// meet, and meters every funded activation in electronic cash. The demo
// launches four agents against it — an unsigned one, one signed with an
// unknown key, a well-behaved paying customer, and a runaway that burns
// cycles until its budget is gone — and then shows the bill arriving back
// at the launching site. Run with:
//
//	go run ./examples/firewall
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/cash"
)

func main() {
	ctx := context.Background()
	sys := tacoma.NewSystem(3, tacoma.SystemConfig{Seed: 42})
	defer sys.Wait()
	home, fw := sys.SiteAt(0), sys.SiteAt(1)

	// One keyring, shared by convention (in a real deployment keys are
	// distributed out of band). The firewall site enrolls itself so its
	// billing notices verify at the launching site.
	keys := tacoma.NewKeyring()
	keys.Enroll("alice")
	keys.Enroll("site/" + string(fw.ID()))

	// The launching site is guarded but open.
	tacoma.InstallGuard(home, tacoma.NewGuard(nil, keys))

	// The firewall site: signatures required, alice may meet only the
	// appraiser, and cycles cost cash — 1 ECU per activation plus 1 ECU
	// per 25 TacL steps.
	policy := tacoma.NewPolicy()
	policy.SetFirewall(true)
	policy.Grant("alice", tacoma.Capability{Meet: []string{"appraiser"}})
	g := tacoma.NewGuard(policy, keys)
	g.Meter = tacoma.NewMeter(25, 1)
	tacoma.InstallGuard(fw, g)

	mint := cash.NewMint()
	g.Meter.Mint = mint // collected bills are validated, not taken on faith

	fw.Register("appraiser", tacoma.AgentFunc(
		func(mc *tacoma.MeetContext, bc *tacoma.Briefcase) error {
			bc.PutString(tacoma.ResultFolder, "appraisal: genuine")
			return nil
		}))
	fw.Register("secrets", tacoma.AgentFunc(
		func(mc *tacoma.MeetContext, bc *tacoma.Briefcase) error {
			bc.PutString("SECRET", "the vault combination")
			return nil
		}))

	fund := func(bc *tacoma.Briefcase, units int) {
		amounts := make([]int64, units)
		for i := range amounts {
			amounts[i] = 1
		}
		bills, err := mint.IssueMany(amounts...)
		if err != nil {
			log.Fatal(err)
		}
		bc.Put(tacoma.CashFolder, tacoma.NewFolder())
		f, _ := bc.Folder(tacoma.CashFolder)
		for _, s := range cash.FormatECUs(bills) {
			f.PushString(s)
		}
	}
	hop := `if {[host] eq "site-0"} { jump site-1 }` + "\n"

	// 1. An unsigned agent is turned away at the boundary.
	_, err := tacoma.RunScript(ctx, home, hop+`meet appraiser`, nil)
	fmt.Printf("1. unsigned agent:        refused (%v)\n\n", err != nil)

	// 2. A signature under a key the firewall never enrolled fares no better.
	mallory := tacoma.NewKeyring()
	mallory.Enroll("mallory")
	bc, err := tacoma.SignedScript(mallory, "mallory", "site-0", hop+`meet appraiser`, nil)
	if err != nil {
		log.Fatal(err)
	}
	err = tacoma.LaunchSigned(ctx, home, bc)
	fmt.Printf("2. unknown-key signature: refused (%v)\n\n", err != nil)

	// 3. alice pays her way: signed, funded, and within her capability.
	bc, err = tacoma.SignedScript(keys, "alice", "site-0", hop+`
		meet appraiser
		bc_push LOG "balance after appraisal: [ecu_balance] ECU"
	`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fund(bc, 10)
	if err := tacoma.LaunchSigned(ctx, home, bc); err != nil {
		log.Fatal(err)
	}
	result, _ := bc.GetString(tacoma.ResultFolder)
	note, _ := bc.GetString("LOG")
	fmt.Printf("3. honest paying agent:   %q — %s\n\n", result, note)

	// 3b. ...but her capability does not reach the secrets agent.
	bc, err = tacoma.SignedScript(keys, "alice", "site-0", hop+`meet secrets`, nil)
	if err != nil {
		log.Fatal(err)
	}
	err = tacoma.LaunchSigned(ctx, home, bc)
	fmt.Printf("3b. ACL on secrets agent: refused (%v)\n    %v\n\n", err != nil, err)

	// 4. The runaway: an infinite loop on a 10-ECU budget. The meter
	// terminates it, confiscates the balance, and bills the home site.
	bc, err = tacoma.SignedScript(keys, "alice", "site-0", hop+`
		while {1} { set x 1 }
	`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fund(bc, 10)
	err = tacoma.LaunchSigned(ctx, home, bc)
	fmt.Printf("4. runaway agent:         terminated (%v)\n    %v\n\n", err != nil, err)
	sys.Wait() // let the billing notice land at home

	fmt.Printf("firewall treasury earned:  %d ECU\n", g.Meter.Earned())
	fmt.Println("billing records at home site:")
	for _, rec := range home.Cabinet().Snapshot(tacoma.BillingFolder).Strings() {
		fmt.Printf("  %s\n", rec)
	}
}
