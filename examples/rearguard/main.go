// Rear guards: section 5's fault-tolerance scheme, live.
//
// An agent walks a 5-site itinerary collecting a trail. Mid-journey the
// site it is executing on crashes, taking the agent with it. The rear
// guard left at the previous site detects the vanished agent (failed
// probes, or a changed incarnation after a quick reboot), relaunches it
// from the checkpointed briefcase, and the journey completes — skipping
// the still-dead site and recording the recovery. The same journey without
// guards simply never comes home. Run with:
//
//	go run ./examples/rearguard
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/folder"
	"repro/internal/rearguard"
	"repro/internal/vnet"
)

func run(guards bool) {
	const hops = 5
	sys := core.NewSystem(hops+1, core.SystemConfig{Seed: 5, CallTimeout: 20 * time.Millisecond})
	defer sys.Wait()

	managers := make([]*rearguard.Manager, sys.Len())
	blocker := make(chan struct{})
	for i := 0; i < sys.Len(); i++ {
		m := rearguard.Install(sys.SiteAt(i))
		m.Interval = 10 * time.Millisecond
		managers[i] = m
		sys.SiteAt(i).Register("survey", core.AgentFunc(func(mc *core.MeetContext, bc *folder.Briefcase) error {
			if mc.Site.ID() == "site-3" && !mc.Site.Cabinet().ContainsString("CRASHED", "once") {
				<-blocker // the crash catches the agent working here
			}
			bc.Ensure("TRAIL").PushString(string(mc.Site.ID()))
			return nil
		}))
	}
	itin := make([]vnet.SiteID, hops)
	for i := range itin {
		itin[i] = sys.SiteAt(i + 1).ID()
	}

	go func() {
		time.Sleep(15 * time.Millisecond)
		fmt.Println("  !! site-3 crashes while the agent is working there")
		sys.SiteAt(3).Cabinet().AppendString("CRASHED", "once")
		sys.Net.Crash("site-3")
		close(blocker)
		time.Sleep(80 * time.Millisecond)
		sys.Net.Restart("site-3")
		fmt.Println("  .. site-3 restarts (volatile agent is gone for good)")
	}()

	ch, err := managers[0].Launch(context.Background(), rearguard.Config{
		ID: "survey-1", Task: "survey", Itinerary: itin, Guards: guards,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	res := rearguard.Wait(ch, 2*time.Second)
	if !res.Completed {
		fmt.Println("  => computation LOST — it never came home")
		return
	}
	trail, _ := res.Briefcase.Folder("TRAIL")
	fmt.Printf("  => completed: trail=%v relaunches=%d skipped=%v\n",
		trail.Strings(), res.Relaunches, res.Skipped)
}

func main() {
	fmt.Println("without rear guards:")
	run(false)
	fmt.Println()
	fmt.Println("with rear guards:")
	run(true)
}
