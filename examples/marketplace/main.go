// Marketplace: electronic cash, validation, and the audit protocol from
// section 3 of the paper.
//
// A buyer purchases weather forecasts from a seller using untraceable
// electronic currency units. The validation agent defeats double spending
// by retiring and reissuing bills; disputed contracts are settled by
// audits over notarized, HMAC-signed statements rather than by a
// transaction mechanism. Run with:
//
//	go run ./examples/marketplace
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cash"
	"repro/internal/core"
	"repro/internal/folder"
)

func main() {
	sys := core.NewSystem(1, core.SystemConfig{Seed: 3})
	defer sys.Wait()
	bank, err := cash.NewBank(sys.SiteAt(0))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	buyer := cash.NewParty(bank, "dag")
	seller := cash.NewParty(bank, "fred")
	bills, err := bank.Mint.IssueMany(100, 50, 20, 20, 10)
	if err != nil {
		log.Fatal(err)
	}
	buyer.Wallet.Add(bills...)
	fmt.Printf("buyer funded: %d ECU in %d bills\n\n", buyer.Wallet.Balance(), buyer.Wallet.Count())

	// --- An honest purchase. ---
	out, err := cash.Purchase(ctx, bank, "forecast-1", "storm forecast for Tromsø", 130,
		buyer, seller, cash.HonestRun)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest purchase: paid=%v delivered=%v audited=%v\n", out.Paid, out.Delivered, out.Audited)
	fmt.Printf("  buyer balance %d, seller balance %d\n\n", buyer.Wallet.Balance(), seller.Wallet.Balance())

	// --- A double-spend attempt, foiled by the validation agent. ---
	bill, _ := bank.Mint.Issue(25)
	spend := func() error {
		bc := folder.NewBriefcase()
		bc.Put(cash.CashFolder, folder.OfStrings(bill.String()))
		return bank.Site.MeetClient(ctx, cash.AgValidator, bc)
	}
	if err := spend(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("first spend of bill: accepted")
	if err := spend(); err != nil {
		fmt.Printf("second spend of same bill: REJECTED (%v)\n\n", err)
	} else {
		log.Fatal("double spend went undetected!")
	}

	// --- Cheating scenarios settled by audit. ---
	for _, tc := range []struct {
		name     string
		behavior cash.Behavior
	}{
		{"seller takes payment, denies it", cash.SellerDeniesPayment},
		{"seller takes payment, ships nothing", cash.SellerSkipsDelivery},
		{"buyer claims to have paid, kept the money", cash.BuyerSkipsPayment},
		{"buyer got the goods, demands refund", cash.BuyerDeniesReceipt},
	} {
		b := cash.NewParty(bank, "buyer-"+tc.name[:6])
		s := cash.NewParty(bank, "seller-"+tc.name[:6])
		funds, _ := bank.Mint.IssueMany(100)
		b.Wallet.Add(funds...)
		out, err := cash.Purchase(ctx, bank, "c/"+tc.name, "svc", 100, b, s, tc.behavior)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s -> verdict: %s (%s)\n", tc.name, out.Verdict, out.Reason)
		if out.Verdict != cash.ExpectedVerdict(tc.behavior) {
			log.Fatal("auditor reached the wrong verdict!")
		}
	}

	fmt.Printf("\nmint: issued=%d outstanding=%d rejected-frauds=%d\n",
		bank.Mint.Issued(), bank.Mint.Outstanding(), bank.Mint.Frauds())
}
