// Command benchdiff compares two tacobench reports (BENCH_meet.json) and
// fails when the meet path regressed beyond a threshold — in throughput,
// in tail latency, or in allocations. CI runs it with the committed
// baseline on the left and the freshly measured report on the right:
//
//	go run ./scripts/benchdiff.go [-threshold 0.15] [-p99-threshold 0.25] \
//	    [-allocs-threshold 0.20] [-ungated durable,durable-naive] \
//	    BENCH_meet.json /tmp/BENCH_new.json
//
// Exit status 0 when every baseline benchmark is present in the new report,
// none lost more than threshold×100 % ops/sec, none grew its p99 latency by
// more than p99-threshold×100 %, and none grew allocs/op by more than
// allocs-threshold×100 %; 1 otherwise. The p99 gate catches regressions
// throughput hides: a lock that serializes one percent of operations barely
// moves ops/sec but multiplies the tail. The allocs gate defends the alloc
// wins the hot-path PRs bought: an accidental per-op allocation barely
// shows in a 2-second throughput sample but costs GC time at scale.
// Benchmarks only present in the new report are listed but never fail the
// run, so new workloads can land together with their first measurements.
// Alloc deltas on baselines below minGatedAllocs allocs/op are ignored —
// at that level a ±1 alloc jitter would trip any percentage gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// result and report mirror the cmd/tacobench JSON schema; only the fields
// benchdiff judges are declared.
type result struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type report struct {
	Schema     string   `json:"schema"`
	Benchmarks []result `json:"benchmarks"`
}

const wantSchema = "tacoma-bench/v1"

// addFailure accumulates one gate's verdict text and marks the run failed.
func addFailure(verdict *string, failed *bool, msg string) {
	if *verdict == "ok" {
		*verdict = msg
	} else {
		*verdict += "; " + msg
	}
	*failed = true
}

// minGatedAllocs: below this many allocs/op in the baseline, the allocation
// gate is skipped — a single-alloc jitter on a 2-alloc lane is 50%.
const minGatedAllocs = 8

// minGatedP99Ns: below this baseline p99, the tail gate is skipped — on a
// sub-5µs lane one GC pause or scheduler hiccup in the p99 sample is a
// ±50% swing, and a real regression there moves ops/sec anyway.
const minGatedP99Ns = 5000

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != wantSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, wantSchema)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &r, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated fractional ops/sec regression")
	p99Threshold := flag.Float64("p99-threshold", 0.25, "maximum tolerated fractional p99 latency regression")
	allocsThreshold := flag.Float64("allocs-threshold", 0.20, "maximum tolerated fractional allocs/op regression")
	ungated := flag.String("ungated", "", "comma-separated benchmark names that are compared and printed but never fail the run (disk-latency-bound lanes whose ops/sec tracks the runner's fdatasync cost, not the code); a lane missing entirely still fails")
	allocsCap := flag.String("allocs-cap", "", "comma-separated name=limit absolute allocs/op ceilings (e.g. script=50): the new report's lane fails when it reaches the limit, independent of the baseline — this is how a hard-won alloc budget stays won")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] [-p99-threshold 0.25] [-allocs-threshold 0.20] [-ungated lane1,lane2] baseline.json new.json")
		os.Exit(2)
	}
	ungatedSet := make(map[string]bool)
	for _, name := range strings.Split(*ungated, ",") {
		if name = strings.TrimSpace(name); name != "" {
			ungatedSet[name] = true
		}
	}
	caps := make(map[string]float64)
	if *allocsCap != "" {
		for _, pair := range strings.Split(*allocsCap, ",") {
			name, limit, ok := strings.Cut(strings.TrimSpace(pair), "=")
			var v float64
			if ok {
				_, err := fmt.Sscanf(limit, "%g", &v)
				ok = err == nil && v > 0
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "benchdiff: bad -allocs-cap entry %q (want name=limit)\n", pair)
				os.Exit(2)
			}
			caps[name] = v
		}
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	curByName := make(map[string]result, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}

	failed := false
	fmt.Printf("%-10s %14s %14s %8s %12s %12s %8s %7s %7s %8s  %s\n",
		"benchmark", "base ops/sec", "new ops/sec", "delta", "base p99", "new p99", "delta",
		"allocs", "allocs", "delta", "verdict")
	for _, b := range base.Benchmarks {
		n, ok := curByName[b.Name]
		if !ok {
			fmt.Printf("%-10s %14.0f %14s %8s %12s %12s %8s %7s %7s %8s  MISSING\n",
				b.Name, b.OpsPerSec, "-", "-", "-", "-", "-", "-", "-", "-")
			failed = true
			continue
		}
		delete(curByName, b.Name)
		delta := (n.OpsPerSec - b.OpsPerSec) / b.OpsPerSec
		// gated is hoisted so a future gate cannot forget the exemption
		// and silently re-gate the disk-latency-bound lanes.
		gated := !ungatedSet[b.Name]
		verdict := "ok"
		if !gated {
			verdict = "ungated"
		}
		if gated && delta < -*threshold {
			addFailure(&verdict, &failed, fmt.Sprintf("REGRESSION (>%.0f%% ops/sec loss)", *threshold*100))
		}
		p99Delta := 0.0
		if b.P99Ns >= minGatedP99Ns {
			p99Delta = float64(n.P99Ns-b.P99Ns) / float64(b.P99Ns)
			if gated && p99Delta > *p99Threshold {
				addFailure(&verdict, &failed, fmt.Sprintf("P99 REGRESSION (>%.0f%% slower tail)", *p99Threshold*100))
			}
		}
		allocsDelta := 0.0
		if b.AllocsPerOp >= minGatedAllocs {
			allocsDelta = (n.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
			if gated && allocsDelta > *allocsThreshold {
				addFailure(&verdict, &failed, fmt.Sprintf("ALLOCS REGRESSION (>%.0f%% more allocs/op)", *allocsThreshold*100))
			}
		}
		// The absolute cap is an explicit opt-in per lane, so it applies
		// even to ungated lanes.
		if limit, capped := caps[b.Name]; capped && n.AllocsPerOp >= limit {
			addFailure(&verdict, &failed, fmt.Sprintf("ALLOCS CAP (%.1f allocs/op >= %.0f)", n.AllocsPerOp, limit))
		}
		fmt.Printf("%-10s %14.0f %14.0f %+7.1f%% %11dns %11dns %+7.1f%% %7.1f %7.1f %+7.1f%%  %s\n",
			b.Name, b.OpsPerSec, n.OpsPerSec, delta*100, b.P99Ns, n.P99Ns, p99Delta*100,
			b.AllocsPerOp, n.AllocsPerOp, allocsDelta*100, verdict)
	}
	for name, n := range curByName {
		verdict := "new benchmark"
		if limit, capped := caps[name]; capped && n.AllocsPerOp >= limit {
			addFailure(&verdict, &failed, fmt.Sprintf("ALLOCS CAP (%.1f allocs/op >= %.0f)", n.AllocsPerOp, limit))
		}
		fmt.Printf("%-10s %14s %14.0f %8s %12s %11dns %8s %7s %7.1f %8s  %s\n",
			name, "-", n.OpsPerSec, "-", "-", n.P99Ns, "-", "-", n.AllocsPerOp, "-", verdict)
	}
	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
