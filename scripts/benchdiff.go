// Command benchdiff compares two tacobench reports (BENCH_meet.json) and
// fails when the meet path regressed beyond a threshold — in throughput or
// in tail latency. CI runs it with the committed baseline on the left and
// the freshly measured report on the right:
//
//	go run ./scripts/benchdiff.go [-threshold 0.15] [-p99-threshold 0.25] \
//	    BENCH_meet.json /tmp/BENCH_new.json
//
// Exit status 0 when every baseline benchmark is present in the new report,
// none lost more than threshold×100 % ops/sec, and none grew its p99
// latency by more than p99-threshold×100 %; 1 otherwise. The p99 gate
// catches regressions throughput hides: a lock that serializes one percent
// of operations barely moves ops/sec but multiplies the tail. Benchmarks
// only present in the new report are listed but never fail the run, so new
// workloads can land together with their first measurements.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// result and report mirror the cmd/tacobench JSON schema; only the fields
// benchdiff judges are declared.
type result struct {
	Name        string  `json:"name"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type report struct {
	Schema     string   `json:"schema"`
	Benchmarks []result `json:"benchmarks"`
}

const wantSchema = "tacoma-bench/v1"

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != wantSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, wantSchema)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &r, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated fractional ops/sec regression")
	p99Threshold := flag.Float64("p99-threshold", 0.25, "maximum tolerated fractional p99 latency regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] [-p99-threshold 0.25] baseline.json new.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	curByName := make(map[string]result, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}

	failed := false
	fmt.Printf("%-10s %14s %14s %8s %12s %12s %8s  %s\n",
		"benchmark", "base ops/sec", "new ops/sec", "delta", "base p99", "new p99", "delta", "verdict")
	for _, b := range base.Benchmarks {
		n, ok := curByName[b.Name]
		if !ok {
			fmt.Printf("%-10s %14.0f %14s %8s %12s %12s %8s  MISSING\n",
				b.Name, b.OpsPerSec, "-", "-", "-", "-", "-")
			failed = true
			continue
		}
		delete(curByName, b.Name)
		delta := (n.OpsPerSec - b.OpsPerSec) / b.OpsPerSec
		verdict := "ok"
		if delta < -*threshold {
			verdict = fmt.Sprintf("REGRESSION (>%.0f%% ops/sec loss)", *threshold*100)
			failed = true
		}
		p99Delta := 0.0
		if b.P99Ns > 0 {
			p99Delta = float64(n.P99Ns-b.P99Ns) / float64(b.P99Ns)
			if p99Delta > *p99Threshold {
				if verdict != "ok" {
					verdict += "; "
				} else {
					verdict = ""
				}
				verdict += fmt.Sprintf("P99 REGRESSION (>%.0f%% slower tail)", *p99Threshold*100)
				failed = true
			}
		}
		fmt.Printf("%-10s %14.0f %14.0f %+7.1f%% %11dns %11dns %+7.1f%%  %s\n",
			b.Name, b.OpsPerSec, n.OpsPerSec, delta*100, b.P99Ns, n.P99Ns, p99Delta*100, verdict)
	}
	for name, n := range curByName {
		fmt.Printf("%-10s %14s %14.0f %8s %12s %11dns %8s  new benchmark\n",
			name, "-", n.OpsPerSec, "-", "-", n.P99Ns, "-")
	}
	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
